package mpi

import (
	"fmt"
	"testing"

	"cafmpi/internal/fabric"
	"cafmpi/internal/sim"
)

// sp returns the scalable-sync variant of the test fabric parameters.
func sp() *fabric.Params { return fabric.SparseVariant(tp()) }

// runSparseMPI executes fn on n images with MPI initialized in sparse mode.
func runSparseMPI(t *testing.T, n int, fn func(*Env) error) {
	t.Helper()
	w := sim.NewWorld(n)
	err := w.Run(func(p *sim.Proc) error {
		return fn(Init(p, fabric.AttachNet(p.World(), sp())))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDirtySetDisabledInDefaultMode(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		w, err := WinAllocate(c, 64)
		if err != nil {
			return err
		}
		if got := w.dirtyCount(); got != -1 {
			return fmt.Errorf("default mode dirtyCount = %d, want -1 (not tracked)", got)
		}
		return c.Barrier()
	})
}

func TestDirtySetTracksRMAOps(t *testing.T) {
	runSparseMPI(t, 5, func(e *Env) error {
		c := e.CommWorld()
		w, err := WinAllocate(c, 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() != 0 {
			if err := c.Barrier(); err != nil {
				return err
			}
			return c.Barrier()
		}
		expect := func(what string, want int) error {
			if got := w.dirtyCount(); got != want {
				return fmt.Errorf("after %s: dirty set has %d peers, want %d", what, got, want)
			}
			return nil
		}
		if err := expect("epoch open", 0); err != nil {
			return err
		}
		// Put, Accumulate, Get each mark their target; a repeat is idempotent.
		if err := w.Put([]byte{1}, 1, 0); err != nil {
			return err
		}
		if err := expect("Put", 1); err != nil {
			return err
		}
		if err := w.Put([]byte{2}, 1, 1); err != nil {
			return err
		}
		if err := expect("repeat Put to same peer", 1); err != nil {
			return err
		}
		one := []int64{1}
		if err := w.Accumulate(I64Bytes(one), 2, 0, Int64, OpSum); err != nil {
			return err
		}
		if err := expect("Accumulate", 2); err != nil {
			return err
		}
		if err := w.Get(make([]byte, 4), 3, 0); err != nil {
			return err
		}
		if err := expect("Get", 3); err != nil {
			return err
		}
		// FlushAll closes the epoch window: the set resets.
		if err := w.FlushAll(); err != nil {
			return err
		}
		if err := expect("FlushAll", 0); err != nil {
			return err
		}
		// Request-generating ops are tracked too: Rput carries a pending
		// timestamp, Rget completes via its request but must still be
		// covered by the next sparse flush's happens-before edge.
		r1, rerr := w.Rput([]byte{3}, 1, 0)
		if rerr != nil {
			return rerr
		}
		if err := expect("Rput", 1); err != nil {
			return err
		}
		r2, rerr := w.Rget(make([]byte, 1), 4, 0)
		if rerr != nil {
			return rerr
		}
		if err := expect("Rget", 2); err != nil {
			return err
		}
		if _, err := r1.Wait(); err != nil {
			return err
		}
		if _, err := r2.Wait(); err != nil {
			return err
		}
		r3, rerr := w.RflushAll()
		if rerr != nil {
			return rerr
		}
		if _, err := r3.Wait(); err != nil {
			return err
		}
		if err := expect("RflushAll", 0); err != nil {
			return err
		}
		// A targeted Flush removes just its peer.
		if err := w.Put([]byte{4}, 1, 0); err != nil {
			return err
		}
		if err := w.Put([]byte{5}, 2, 0); err != nil {
			return err
		}
		if err := w.Flush(1); err != nil {
			return err
		}
		if err := expect("targeted Flush", 1); err != nil {
			return err
		}
		if err := w.FlushAll(); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return c.Barrier()
	})
}

func TestFlushAllCostLinearInDirtyPeers(t *testing.T) {
	// The sibling of TestFlushAllCostLinearInCommSize: in sparse mode the
	// FlushAll charge is proportional to the peers the epoch touched, not to
	// the communicator size — the foMPI-style scalable synchronization the
	// default mode's Figure 4 pathology motivates.
	flushTime := func(n, k int) int64 {
		var dt int64
		w := sim.NewWorld(n)
		if err := w.Run(func(p *sim.Proc) error {
			e := Init(p, fabric.AttachNet(p.World(), sp()))
			c := e.CommWorld()
			win, err := WinAllocate(c, 64)
			if err != nil {
				return err
			}
			if err := win.LockAll(); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if p.ID() == 0 {
				for i := 1; i <= k; i++ {
					if err := win.Put([]byte{1}, i, 0); err != nil {
						return err
					}
				}
				// Outlive every remote completion so the measured FlushAll is
				// pure charging, with no data-dependent wait component.
				p.Advance(100_000_000)
				t0 := p.Now()
				if err := win.FlushAll(); err != nil {
					return err
				}
				dt = p.Now() - t0
			}
			return c.Barrier()
		}); err != nil {
			t.Fatal(err)
		}
		return dt
	}
	costs := sp().MPI
	const k = 3
	want := int64(k) * (costs.FlushScanNS + costs.FlushNS)
	t8, t128 := flushTime(8, k), flushTime(128, k)
	if t8 != want || t128 != want {
		t.Errorf("sparse FlushAll over %d dirty peers = %d, %d ns (P=8, P=128); want exactly %d in both — cost must not scale with comm size", k, t8, t128, want)
	}
	if clean := flushTime(128, 0); clean != 0 {
		t.Errorf("sparse FlushAll of an untouched epoch cost %d ns, want 0", clean)
	}
}

func TestSparseLockAllConstantCost(t *testing.T) {
	// Default-mode LockAll charges the per-rank acquisition scan; sparse
	// mode defers acquisition to first use and opens the epoch in O(1).
	openTime := func(pf *fabric.Params, n int) int64 {
		var dt int64
		w := sim.NewWorld(n)
		if err := w.Run(func(p *sim.Proc) error {
			e := Init(p, fabric.AttachNet(p.World(), pf))
			c := e.CommWorld()
			win, err := WinAllocate(c, 64)
			if err != nil {
				return err
			}
			if p.ID() == 0 {
				t0 := p.Now()
				if err := win.LockAll(); err != nil {
					return err
				}
				dt = p.Now() - t0
			} else if err := win.LockAll(); err != nil {
				return err
			}
			return c.Barrier()
		}); err != nil {
			t.Fatal(err)
		}
		return dt
	}
	scan := tp().MPI.FlushScanNS
	if got := openTime(tp(), 64); got != 64*scan {
		t.Errorf("default LockAll at P=64 cost %d ns, want %d (per-rank scan)", got, 64*scan)
	}
	if got := openTime(sp(), 64); got != scan {
		t.Errorf("sparse LockAll at P=64 cost %d ns, want %d (constant)", got, scan)
	}
}

func TestOnDemandFootprintFlatInWorldSize(t *testing.T) {
	// Default mode preallocates eager slots and peer state for every rank at
	// Init (footprint linear in P, Figure 1); sparse mode allocates per-peer
	// state at first contact, so an image's footprint tracks how many peers
	// it actually messaged.
	costs := tp().MPI
	perPeer := int64(costs.EagerSlotsPerPeer*costs.EagerSlotBytes + costs.PeerStateBytes)
	foot := func(n, touch int) int64 {
		var got int64
		w := sim.NewWorld(n)
		if err := w.Run(func(p *sim.Proc) error {
			e := Init(p, fabric.AttachNet(p.World(), sp()))
			c := e.CommWorld()
			win, err := WinAllocate(c, 64)
			if err != nil {
				return err
			}
			if err := win.LockAll(); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if p.ID() == 0 {
				base := e.MemoryFootprint()
				// Peers the dissemination barrier's power-of-two pattern has
				// not already connected from rank 0.
				for _, i := range []int{3, 5, 6}[:touch] {
					if err := win.Put([]byte{1}, i, 0); err != nil {
						return err
					}
				}
				if err := win.FlushAll(); err != nil {
					return err
				}
				got = e.MemoryFootprint() - base
			}
			return c.Barrier()
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	const touch = 3
	d8, d256 := foot(8, touch), foot(256, touch)
	if d8 != touch*perPeer || d256 != touch*perPeer {
		t.Errorf("on-demand footprint delta after touching %d peers = %d, %d bytes (P=8, P=256); want exactly %d in both", touch, d8, d256, touch*perPeer)
	}
}

func TestSparseInitFootprintExcludesPeerPools(t *testing.T) {
	flatAt := func(pf *fabric.Params, n int) int64 {
		var got int64
		w := sim.NewWorld(n)
		if err := w.Run(func(p *sim.Proc) error {
			e := Init(p, fabric.AttachNet(p.World(), pf))
			if p.ID() == 0 {
				got = e.MemoryFootprint()
			}
			return e.CommWorld().Barrier()
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	costs := tp().MPI
	perPeer := int64(costs.EagerSlotsPerPeer*costs.EagerSlotBytes + costs.PeerStateBytes)
	if got := flatAt(tp(), 64); got != costs.BaseFootprint+64*perPeer {
		t.Errorf("default Init footprint at P=64 = %d, want %d", got, costs.BaseFootprint+64*perPeer)
	}
	if got := flatAt(sp(), 64); got != costs.BaseFootprint {
		t.Errorf("sparse Init footprint at P=64 = %d, want the base %d (no preallocated peer pools)", got, costs.BaseFootprint)
	}
	if f64, f1024 := flatAt(sp(), 64), flatAt(sp(), 1024); f64 != f1024 {
		t.Errorf("sparse Init footprint grew with world size: %d (P=64) vs %d (P=1024)", f64, f1024)
	}
}

func TestDynWinFootprintAccounting(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		w, err := WinCreateDynamic(c)
		if err != nil {
			return err
		}
		meta := int64(e.costs().PeerStateBytes)
		before := e.MemoryFootprint()
		reg, err := w.Attach(make([]byte, 4096))
		if err != nil {
			return err
		}
		if got := e.MemoryFootprint() - before; got != 4096+meta {
			return fmt.Errorf("attach footprint delta %d, want %d (region + registration metadata)", got, 4096+meta)
		}
		if err := w.Detach(reg); err != nil {
			return err
		}
		if got := e.MemoryFootprint(); got != before {
			return fmt.Errorf("footprint %d after detach, want %d — detach must release registration metadata too", got, before)
		}
		// Free releases regions that were never explicitly detached.
		if _, err := w.Attach(make([]byte, 1024)); err != nil {
			return err
		}
		if _, err := w.Attach(make([]byte, 2048)); err != nil {
			return err
		}
		if err := w.Free(); err != nil {
			return err
		}
		if got := e.MemoryFootprint(); got != before {
			return fmt.Errorf("footprint %d after Free, want %d — Free must release attached regions", got, before)
		}
		return c.Barrier()
	})
}
