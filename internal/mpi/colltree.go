package mpi

import "fmt"

// Hierarchical collectives for the scalable-sync mode: the flat fan-in/
// fan-out survivors (Gather, Scatter, and Allgather's n-1-round ring)
// become binomial trees with ceil(log2 n) rounds, so the root absorbs
// O(log n) messages instead of n-1 once FlushAll stops being the O(P)
// cliff. The default mode keeps the flat algorithms (and their exact
// clocks) for the paper-faithful baseline.
//
// Both trees work in root-relative ("virtual rank") space: vr = (rank -
// root + n) % n. Node vr's subtree covers the contiguous vr range
// [vr, vr+width) with width = min(lowest set bit of vr, n-vr) (the root,
// vr=0, covers everything), so aggregated payloads stay contiguous and
// each edge carries the whole subtree in one message.

// hier reports whether hierarchical collectives are enabled on this
// communicator's platform. All ranks share the platform, so the dispatch
// agrees world-wide.
func (c *Comm) hier() bool { return c.env.costs().SparseFlush }

// subtreeWidth returns the number of vr-contiguous blocks rooted at vr.
func subtreeWidth(vr, n int) int {
	if vr == 0 {
		return n
	}
	w := vr & -vr
	if rest := n - vr; rest < w {
		w = rest
	}
	return w
}

// gatherTree is the binomial-tree gather: each node aggregates its
// subtree's blocks (in vr order) and forwards them to its parent in one
// message. At root, the aggregate is reordered into rank order in recvBuf;
// recvBuf is significant only there.
func (c *Comm) gatherTree(sendBuf, recvBuf []byte, root int) error {
	n := c.Size()
	blk := len(sendBuf)
	vr := (c.myRank - root + n) % n
	width := subtreeWidth(vr, n)
	buf := sendBuf
	if width > 1 {
		buf = make([]byte, width*blk)
		copy(buf, sendBuf)
	}
	cnt := 1
	for mask := 1; mask < n; mask <<= 1 {
		if vr&mask != 0 {
			parent := (c.myRank - mask + n) % n
			return c.csend(buf[:cnt*blk], parent, tagGather)
		}
		if vr+mask < n {
			child := (c.myRank + mask) % n
			sub := subtreeWidth(vr+mask, n)
			st, err := c.crecv(buf[cnt*blk:(cnt+sub)*blk], child, tagGather)
			if err != nil {
				return err
			}
			if st.Count != sub*blk {
				return errShortTreeMsg("Gather", child, st.Count, sub*blk)
			}
			cnt += sub
		}
	}
	// Root: buf holds all n blocks in vr order; rotate back to rank order.
	for j := 0; j < n; j++ {
		copy(recvBuf[((root+j)%n)*blk:((root+j)%n+1)*blk], buf[j*blk:(j+1)*blk])
	}
	return nil
}

// scatterTree is the binomial-tree scatter: the root stages sendBuf in vr
// order and each node receives its whole subtree from its parent, then
// forwards sub-subtrees to its children largest-first.
func (c *Comm) scatterTree(sendBuf, recvBuf []byte, root int) error {
	n := c.Size()
	blk := len(recvBuf)
	vr := (c.myRank - root + n) % n
	width := subtreeWidth(vr, n)
	var buf []byte
	mask := 1
	if vr == 0 {
		buf = make([]byte, n*blk)
		for j := 0; j < n; j++ {
			src := (root + j) % n
			copy(buf[j*blk:(j+1)*blk], sendBuf[src*blk:(src+1)*blk])
		}
		for mask < n {
			mask <<= 1
		}
	} else {
		buf = make([]byte, width*blk)
		mask = vr & -vr
		parent := (c.myRank - mask + n) % n
		st, err := c.crecv(buf, parent, tagScatter)
		if err != nil {
			return err
		}
		if st.Count != width*blk {
			return errShortTreeMsg("Scatter", parent, st.Count, width*blk)
		}
	}
	for m := mask >> 1; m > 0; m >>= 1 {
		if vr+m >= n {
			continue
		}
		child := (c.myRank + m) % n
		sub := subtreeWidth(vr+m, n)
		if err := c.csend(buf[m*blk:(m+sub)*blk], child, tagScatter); err != nil {
			return err
		}
	}
	copy(recvBuf, buf[:blk])
	return nil
}

// allgatherTree is gather-to-0 plus a binomial broadcast: 2·ceil(log2 n)
// rounds against the ring's n-1, at the price of funneling through rank 0.
func (c *Comm) allgatherTree(sendBuf, recvBuf []byte, dt Datatype) error {
	n := c.Size()
	blk := len(sendBuf)
	if err := c.gatherTree(sendBuf, recvBuf[:blk*n], 0); err != nil {
		return err
	}
	return c.Bcast(recvBuf[:blk*n], dt, 0)
}

func errShortTreeMsg(what string, peer, got, want int) error {
	return fmt.Errorf("mpi: %s tree: rank %d sent %d bytes, want %d", what, peer, got, want)
}
