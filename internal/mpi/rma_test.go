package mpi

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"cafmpi/internal/fabric"
	"cafmpi/internal/sim"
)

func TestWinAllocatePutGetRoundTrip(t *testing.T) {
	runMPI(t, 4, func(e *Env) error {
		c := e.CommWorld()
		w, err := WinAllocate(c, 256)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		// Each rank writes its signature into the next rank's window.
		next := (c.Rank() + 1) % c.Size()
		sig := []byte{byte(c.Rank()), byte(c.Rank() + 100)}
		if err := w.Put(sig, next, 10); err != nil {
			return err
		}
		if err := w.Flush(next); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		// Local window now holds the previous rank's signature.
		prev := (c.Rank() - 1 + c.Size()) % c.Size()
		local := w.Base()
		if local[10] != byte(prev) || local[11] != byte(prev+100) {
			return fmt.Errorf("rank %d window has %v, want prev=%d", c.Rank(), local[10:12], prev)
		}
		// And Get reads a remote window correctly.
		got := make([]byte, 2)
		if err := w.Get(got, next, 10); err != nil {
			return err
		}
		if err := w.Flush(next); err != nil {
			return err
		}
		if got[0] != byte(c.Rank()) {
			return fmt.Errorf("get from %d returned %v", next, got)
		}
		if err := w.UnlockAll(); err != nil {
			return err
		}
		return w.Free()
	})
}

func TestRMAOutsideEpochFails(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		w, err := WinAllocate(c, 64)
		if err != nil {
			return err
		}
		if err := w.Put([]byte{1}, 0, 0); err == nil || !strings.Contains(err.Error(), "epoch") {
			return fmt.Errorf("Put outside epoch: got %v, want epoch error", err)
		}
		if err := w.FlushAll(); err == nil {
			return fmt.Errorf("FlushAll outside epoch should fail")
		}
		return c.Barrier()
	})
}

func TestSingleTargetLockEpoch(t *testing.T) {
	runMPI(t, 3, func(e *Env) error {
		c := e.CommWorld()
		w, err := WinAllocate(c, 64)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := w.Lock(2); err != nil {
				return err
			}
			if err := w.Put([]byte{42}, 2, 0); err != nil {
				return err
			}
			// Access to an unlocked target must fail.
			if err := w.Put([]byte{1}, 1, 0); err == nil {
				return fmt.Errorf("Put to unlocked target succeeded")
			}
			if err := w.Unlock(2); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 2 && w.Base()[0] != 42 {
			return fmt.Errorf("target window byte = %d, want 42", w.Base()[0])
		}
		return nil
	})
}

func TestEpochMisuseErrors(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		w, err := WinAllocate(c, 8)
		if err != nil {
			return err
		}
		if err := w.UnlockAll(); err == nil {
			return fmt.Errorf("UnlockAll without LockAll should fail")
		}
		if err := w.Unlock(0); err == nil {
			return fmt.Errorf("Unlock without Lock should fail")
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if err := w.LockAll(); err == nil {
			return fmt.Errorf("nested LockAll should fail")
		}
		if err := w.Put([]byte{1}, 0, 100); err == nil {
			return fmt.Errorf("out-of-range Put should fail")
		}
		if err := w.Put([]byte{1}, 5, 0); err == nil {
			return fmt.Errorf("invalid target rank should fail")
		}
		return c.Barrier()
	})
}

func TestAccumulateAtomicUnderContention(t *testing.T) {
	const per = 200
	runMPI(t, 8, func(e *Env) error {
		c := e.CommWorld()
		w, err := WinAllocate(c, 8)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		one := []int64{1}
		for i := 0; i < per; i++ {
			if err := w.Accumulate(I64Bytes(one), 0, 0, Int64, OpSum); err != nil {
				return err
			}
		}
		if err := w.FlushAll(); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			got := BytesI64(w.Base())[0]
			if got != int64(per*c.Size()) {
				return fmt.Errorf("accumulate lost updates: %d, want %d", got, per*c.Size())
			}
		}
		return nil
	})
}

func TestFetchAndOpTicketCounter(t *testing.T) {
	runMPI(t, 6, func(e *Env) error {
		c := e.CommWorld()
		w, err := WinAllocate(c, 8)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		one := []int64{1}
		old := make([]int64, 1)
		if err := w.FetchAndOp(I64Bytes(one), I64Bytes(old), 0, 0, Int64, OpSum); err != nil {
			return err
		}
		ticket := old[0]
		if ticket < 0 || ticket >= int64(c.Size()) {
			return fmt.Errorf("ticket %d out of range", ticket)
		}
		// Gather tickets at rank 0: all distinct is the atomicity witness.
		all := make([]int64, c.Size())
		if err := c.Gather(I64Bytes([]int64{ticket}), I64Bytes(all), Int64, 0); err != nil {
			return err
		}
		if c.Rank() == 0 {
			seen := map[int64]bool{}
			for _, v := range all {
				if seen[v] {
					return fmt.Errorf("duplicate ticket %d in %v", v, all)
				}
				seen[v] = true
			}
		}
		return nil
	})
}

func TestFetchAndOpNoOpReadsWithoutModifying(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		w, err := WinAllocate(c, 8)
		if err != nil {
			return err
		}
		BytesI64(w.Base())[0] = int64(77 + c.Rank())
		if err := c.Barrier(); err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		got := make([]int64, 1)
		peer := 1 - c.Rank()
		if err := w.FetchAndOp(nil, I64Bytes(got), peer, 0, Int64, OpNoOp); err != nil {
			return err
		}
		if got[0] != int64(77+peer) {
			return fmt.Errorf("no-op fetch got %d, want %d", got[0], 77+peer)
		}
		return c.Barrier()
	})
}

func TestCompareAndSwapMutualExclusion(t *testing.T) {
	runMPI(t, 8, func(e *Env) error {
		c := e.CommWorld()
		w, err := WinAllocate(c, 8)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		// Everyone tries to claim slot 0 on rank 0 with CAS(0 -> rank+1).
		mine := []int64{int64(c.Rank() + 1)}
		zero := []int64{0}
		old := make([]int64, 1)
		if err := w.CompareAndSwap(I64Bytes(mine), I64Bytes(zero), I64Bytes(old), 0, 0, Int64); err != nil {
			return err
		}
		won := int32(0)
		if old[0] == 0 {
			won = 1
		}
		total := make([]int32, 1)
		if err := c.Allreduce(I32Bytes([]int32{won}), I32Bytes(total), Int32, OpSum); err != nil {
			return err
		}
		if total[0] != 1 {
			return fmt.Errorf("%d winners, want exactly 1", total[0])
		}
		return nil
	})
}

func TestGetAccumulateSwapAndFetch(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		w, err := WinAllocate(c, 16)
		if err != nil {
			return err
		}
		BytesI64(w.Base())[0] = int64(c.Rank() * 1000)
		if err := c.Barrier(); err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if c.Rank() == 1 {
			in := []int64{555}
			out := make([]int64, 1)
			// OpReplace: atomic swap.
			if err := w.GetAccumulate(I64Bytes(in), I64Bytes(out), 0, 0, Int64, OpReplace); err != nil {
				return err
			}
			if out[0] != 0 {
				return fmt.Errorf("swap fetched %d, want 0", out[0])
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 && BytesI64(w.Base())[0] != 555 {
			return fmt.Errorf("replace did not land: %d", BytesI64(w.Base())[0])
		}
		return nil
	})
}

func TestFlushAllCostLinearInCommSize(t *testing.T) {
	// The MPICH FlushAll behaviour: cost scales with communicator size even
	// with a single outstanding op. This is the mechanism behind Figure 4.
	flushTime := func(n int) int64 {
		var dt int64
		w := sim.NewWorld(n)
		if err := w.Run(func(p *sim.Proc) error {
			e := Init(p, fabric.AttachNet(p.World(), tp()))
			c := e.CommWorld()
			win, err := WinAllocate(c, 64)
			if err != nil {
				return err
			}
			if err := win.LockAll(); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if p.ID() == 0 {
				if err := win.Put([]byte{1}, n-1, 0); err != nil {
					return err
				}
				if err := win.FlushAll(); err != nil { // drain the put
					return err
				}
				t0 := p.Now()
				if err := win.FlushAll(); err != nil { // pure per-rank scan
					return err
				}
				dt = p.Now() - t0
			}
			return c.Barrier()
		}); err != nil {
			t.Fatal(err)
		}
		return dt
	}
	t8, t128 := flushTime(8), flushTime(128)
	if t128 <= t8 {
		t.Fatalf("FlushAll cost must grow with comm size: %d ns (P=8) vs %d ns (P=128)", t8, t128)
	}
	scan := tp().MPI.FlushScanNS
	if t8 != 8*scan || t128 != 128*scan {
		t.Errorf("FlushAll scan costs = %d, %d ns; want exactly %d and %d (linear per-rank scan)",
			t8, t128, 8*scan, 128*scan)
	}
}

func TestRflushOverlapsCompletion(t *testing.T) {
	runMPI(t, 4, func(e *Env) error {
		c := e.CommWorld()
		w, err := WinAllocate(c, 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := w.Put(make([]byte, 32), 1, 0); err != nil {
				return err
			}
			r, err := w.Rflush(1)
			if err != nil {
				return err
			}
			issued := e.Proc().Now()
			e.Proc().Advance(500_000) // overlapped computation
			if _, err := r.Wait(); err != nil {
				return err
			}
			// The flush latency was hidden behind computation: waiting must
			// not add the full flush latency again (a small poll charge is
			// fine).
			if over := e.Proc().Now() - (issued + 500_000); over > 5_000 {
				return fmt.Errorf("Rflush wait added %d ns beyond compute", over)
			}
		}
		return c.Barrier()
	})
}

func TestRputRgetRequests(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		w, err := WinAllocate(c, 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			r1, err := w.Rput([]byte{9, 8, 7}, 1, 0)
			if err != nil {
				return err
			}
			if _, err = r1.Wait(); err != nil { // local completion
				return err
			}
			if err = w.Flush(1); err != nil { // remote completion
				return err
			}
			got := make([]byte, 3)
			r2, err := w.Rget(got, 1, 0)
			if err != nil {
				return err
			}
			if _, err := r2.Wait(); err != nil {
				return err
			}
			if got[0] != 9 || got[2] != 7 {
				return fmt.Errorf("rget returned %v", got)
			}
		}
		return c.Barrier()
	})
}

func TestWindowFootprintAccounting(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		before := e.MemoryFootprint()
		w, err := WinAllocate(c, 4096)
		if err != nil {
			return err
		}
		if got := e.MemoryFootprint() - before; got != 4096 {
			return fmt.Errorf("window footprint delta %d, want 4096", got)
		}
		if err := w.Free(); err != nil {
			return err
		}
		if got := e.MemoryFootprint(); got != before {
			return fmt.Errorf("footprint %d after free, want %d", got, before)
		}
		if err := w.Free(); err == nil {
			return fmt.Errorf("double free should fail")
		}
		return nil
	})
}

func TestUseAfterFree(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		w, err := WinAllocate(c, 8)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if err := w.Free(); err != nil {
			return err
		}
		if err := w.Put([]byte{1}, 0, 0); err == nil {
			return fmt.Errorf("Put on freed window should fail")
		}
		return nil
	})
}

// Property: put-then-get round trips arbitrary data at arbitrary valid
// offsets between random pairs of ranks.
func TestPutGetRoundTripProperty(t *testing.T) {
	const winSize = 512
	f := func(data []byte, off uint16, target uint8) bool {
		if len(data) == 0 || len(data) > winSize {
			return true
		}
		disp := int(off) % (winSize - len(data) + 1)
		ok := true
		w := sim.NewWorld(3)
		tgt := int(target) % 3
		err := w.Run(func(p *sim.Proc) error {
			e := Init(p, fabric.AttachNet(p.World(), tp()))
			c := e.CommWorld()
			win, err := WinAllocate(c, winSize)
			if err != nil {
				return err
			}
			if err := win.LockAll(); err != nil {
				return err
			}
			if c.Rank() == 0 {
				if err := win.Put(data, tgt, disp); err != nil {
					return err
				}
				if err := win.Flush(tgt); err != nil {
					return err
				}
				back := make([]byte, len(data))
				if err := win.Get(back, tgt, disp); err != nil {
					return err
				}
				if err := win.Flush(tgt); err != nil {
					return err
				}
				for i := range back {
					if back[i] != data[i] {
						ok = false
					}
				}
			}
			return c.Barrier()
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicWindowAttachPutGet(t *testing.T) {
	runMPI(t, 3, func(e *Env) error {
		c := e.CommWorld()
		w, err := WinCreateDynamic(c)
		if err != nil {
			return err
		}
		// Each rank attaches its own buffer, then shares the region keys
		// (as real programs exchange MPI_Get_address results).
		mem := make([]byte, 64)
		mem[0] = byte(100 + c.Rank())
		reg, err := w.Attach(mem)
		if err != nil {
			return err
		}
		keys := make([]int64, c.Size())
		if err := c.Allgather(I64Bytes([]int64{reg.Key}), I64Bytes(keys), Int64); err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		next := (c.Rank() + 1) % c.Size()
		nreg := DynRegion{Rank: next, Key: keys[next]}
		got := make([]byte, 1)
		if err := w.Get(got, nreg, 0); err != nil {
			return err
		}
		if err := w.Flush(next); err != nil {
			return err
		}
		if got[0] != byte(100+next) {
			return fmt.Errorf("dyn get returned %d", got[0])
		}
		if err := w.Put([]byte{byte(200 + c.Rank())}, nreg, 1); err != nil {
			return err
		}
		if err := w.FlushAll(); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		prev := (c.Rank() - 1 + c.Size()) % c.Size()
		if mem[1] != byte(200+prev) {
			return fmt.Errorf("dyn put landed wrong: %d", mem[1])
		}
		// Accumulate into rank 0's region from everyone.
		zero := DynRegion{Rank: 0, Key: keys[0]}
		if err := w.Accumulate(I64Bytes([]int64{1}), zero, 8, Int64, OpSum); err != nil {
			return err
		}
		if err := w.FlushAll(); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 && BytesI64(mem[8:16])[0] != 3 {
			return fmt.Errorf("dyn accumulate sum %d", BytesI64(mem[8:16])[0])
		}
		return w.Free()
	})
}

func TestDynamicWindowValidation(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		w, err := WinCreateDynamic(c)
		if err != nil {
			return err
		}
		mem := make([]byte, 16)
		reg, err := w.Attach(mem)
		if err != nil {
			return err
		}
		if err := w.Put([]byte{1}, reg, 0); err == nil {
			return fmt.Errorf("RMA outside epoch accepted")
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if err := w.Put([]byte{1}, reg, 20); err == nil {
			return fmt.Errorf("out-of-range accepted")
		}
		bogus := DynRegion{Rank: 1 - c.Rank(), Key: 9999}
		if err := w.Put([]byte{1}, bogus, 0); err == nil {
			return fmt.Errorf("unattached region accepted")
		}
		if err := w.Detach(reg); err != nil {
			return err
		}
		if err := w.Detach(reg); err == nil {
			return fmt.Errorf("double detach accepted")
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if err := w.Put([]byte{1}, DynRegion{Rank: 1 - c.Rank(), Key: 1}, 0); err == nil {
			return fmt.Errorf("put to detached region accepted")
		}
		if _, err := w.Attach(nil); err == nil {
			return fmt.Errorf("nil attach accepted")
		}
		return c.Barrier()
	})
}

func TestSharedWindowOnOneNode(t *testing.T) {
	// Platform with 4 cores per node; 8 ranks = 2 nodes.
	params := tp()
	params.CoresPerNode = 4
	params.IntraLatencyNS = 100
	params.IntraGapNS = 0.1
	w := sim.NewWorld(8)
	err := w.Run(func(p *sim.Proc) error {
		e := Init(p, fabric.AttachNet(p.World(), params))
		c := e.CommWorld()
		node, err := c.SplitShared()
		if err != nil {
			return err
		}
		if node.Size() != 4 {
			return fmt.Errorf("node comm size %d, want 4", node.Size())
		}
		// Shared allocation on the node comm succeeds...
		win, err := WinAllocateShared(node, 64)
		if err != nil {
			return err
		}
		// ... and direct stores by one rank are visible to node peers.
		if node.Rank() == 0 {
			mem, qerr := win.SharedQuery(0)
			if qerr != nil {
				return qerr
			}
			mem[5] = byte(0xA0 + p.ID()/4)
		}
		if err = node.Barrier(); err != nil {
			return err
		}
		peer0, err := win.SharedQuery(0)
		if err != nil {
			return err
		}
		if peer0[5] != byte(0xA0+p.ID()/4) {
			return fmt.Errorf("shared store not visible: %#x", peer0[5])
		}
		// A cross-node shared allocation must be refused.
		if _, err = WinAllocateShared(c, 8); err == nil {
			return fmt.Errorf("cross-node shared window accepted")
		}
		// But checkLive etc: plain window query is rejected.
		plain, err := WinAllocate(node, 8)
		if err != nil {
			return err
		}
		if _, err := plain.SharedQuery(0); err == nil {
			return fmt.Errorf("SharedQuery on plain window accepted")
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
