package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cafmpi/internal/obs"
)

// winShared is the cross-image state of one window: every rank's memory and
// the per-rank locks that serialize atomic accumulates.
type winShared struct {
	key    string
	bases  [][]byte // indexed by comm rank
	atomMu []sync.Mutex
}

// Win is an MPI-3 window as seen by one image. RMA operations require an
// access epoch (Lock/LockAll); CAF-MPI lock_alls every window at coarray
// allocation and keeps the epoch open for the window's lifetime (§3.1).
//
// The embedded epoch carries the origin-side completion tracking whose
// linear FlushAll scan is the MPICH behaviour dominating the paper's
// Figure 4 — and, in scalable-sync mode, the dirty-peer set that fixes it.
type Win struct {
	epoch
	sh   *winShared
	size int

	lockedAll bool
	locked    []bool

	shared bool // created by WinAllocateShared
	freed  bool
}

// WinAllocate collectively creates a window of size bytes on every rank of
// comm, like MPI_WIN_ALLOCATE (the implementation allocates the memory,
// giving it freedom to use special regions — here the benefit is modeled in
// the setup cost only).
func WinAllocate(c *Comm, size int) (*Win, error) {
	c.env.checkLive()
	if size < 0 {
		return nil, fmt.Errorf("mpi: negative window size %d", size)
	}
	// Disjoint communicators born of one Split share a context id, so the
	// registry key also carries the group identity (rank 0's world rank).
	key := fmt.Sprintf("win/%d/%d/%d", c.ctx, c.winSeq, c.ranks[0])
	c.winSeq++
	ws := c.env.ws
	ws.winsMu.Lock()
	sh, ok := ws.wins[key]
	if !ok {
		sh = &winShared{key: key, bases: make([][]byte, c.Size()), atomMu: make([]sync.Mutex, c.Size())}
		ws.wins[key] = sh
	}
	sh.bases[c.myRank] = make([]byte, size)
	ws.winsMu.Unlock()

	w := &Win{
		sh:     sh,
		size:   size,
		locked: make([]bool, c.Size()),
	}
	w.epInit(c.env, c)
	c.env.p.Advance(c.env.costs().WinSetupNS * int64(c.Size()))
	atomic.AddInt64(&c.env.footprint, int64(size))
	// The barrier both orders window-memory publication (every base set
	// before any rank returns) and models the collective synchronization
	// of window creation.
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	return w, nil
}

// Base returns the local window memory.
func (w *Win) Base() []byte { return w.sh.bases[w.comm.myRank] }

// Size returns the local window size in bytes.
func (w *Win) Size() int { return w.size }

// Comm returns the communicator the window was created on.
func (w *Win) Comm() *Comm { return w.comm }

// Free releases the window collectively.
func (w *Win) Free() error {
	if w.freed {
		return fmt.Errorf("mpi: window already freed")
	}
	if err := w.comm.Barrier(); err != nil {
		return err
	}
	w.freed = true
	atomic.AddInt64(&w.env.footprint, -int64(w.size))
	w.env.ws.winsMu.Lock()
	delete(w.env.ws.wins, w.sh.key)
	w.env.ws.winsMu.Unlock()
	return nil
}

// LockAll opens a shared access epoch to every target (MPI_WIN_LOCK_ALL
// with MPI_MODE_NOCHECK semantics: acquisition is lazy and cheap).
func (w *Win) LockAll() error {
	if w.lockedAll {
		return fmt.Errorf("mpi: LockAll inside an existing lock-all epoch")
	}
	w.lockedAll = true
	w.lockAllEpoch()
	return nil
}

// UnlockAll flushes and closes the lock-all epoch.
func (w *Win) UnlockAll() error {
	if !w.lockedAll {
		return fmt.Errorf("mpi: UnlockAll without LockAll")
	}
	if err := w.FlushAll(); err != nil {
		return err
	}
	w.lockedAll = false
	return nil
}

// Lock opens an access epoch to a single target.
func (w *Win) Lock(target int) error {
	if err := w.comm.checkRank(target, "lock"); err != nil {
		return err
	}
	if w.locked[target] || w.lockedAll {
		return fmt.Errorf("mpi: Lock(%d) inside an existing epoch", target)
	}
	w.locked[target] = true
	t0 := w.env.p.Now()
	w.env.p.Advance(w.env.net.Params().LatencyNS) // lock request one-way; grant piggybacked
	if sh := w.env.sh; sh != nil {
		sh.Record(obs.LayerMPI, obs.OpLockAll, w.comm.ranks[target], 0, 1, t0, w.env.p.Now())
		sh.Add(obs.CtrLockAllCalls, 1)
	}
	return nil
}

// Unlock flushes and closes the single-target epoch.
func (w *Win) Unlock(target int) error {
	if err := w.comm.checkRank(target, "unlock"); err != nil {
		return err
	}
	if !w.locked[target] {
		return fmt.Errorf("mpi: Unlock(%d) without Lock", target)
	}
	if err := w.Flush(target); err != nil {
		return err
	}
	w.locked[target] = false
	return nil
}

func (w *Win) checkAccess(target int, what string) error {
	if w.freed {
		return fmt.Errorf("mpi: %s on freed window", what)
	}
	if err := w.comm.checkRank(target, what); err != nil {
		return err
	}
	if !w.lockedAll && !w.locked[target] {
		// MPI-3 RMA usage violation: surfaced to the sanitizer (so a
		// -sanitize run reports it alongside data races) and still returned
		// as the hard error it always was.
		w.env.san.RMAViolation(fmt.Sprintf("image %d: %s to window target %d outside an access epoch (no Lock/LockAll)",
			w.env.p.ID(), what, target))
		return fmt.Errorf("mpi: %s to target %d outside an access epoch (call Lock or LockAll first)", what, target)
	}
	return nil
}

func (w *Win) checkRange(target, disp, n int, what string) error {
	if disp < 0 || disp+n > len(w.sh.bases[target]) {
		return fmt.Errorf("mpi: %s range [%d,%d) outside window of size %d", what, disp, disp+n, len(w.sh.bases[target]))
	}
	return nil
}

// Put copies buf into the target's window at byte displacement disp
// (MPI_PUT: completes remotely only after a flush or epoch close).
func (w *Win) Put(buf []byte, target, disp int) error {
	if err := w.checkAccess(target, "Put"); err != nil {
		return err
	}
	if err := w.checkRange(target, disp, len(buf), "Put"); err != nil {
		return err
	}
	worldDst := w.comm.ranks[target]
	t0 := w.env.p.Now()
	done := w.env.layer.RMAPut(w.env.p, worldDst, len(buf), w.env.costs().PutNS)
	copy(w.sh.bases[target][disp:], buf)
	w.notePending(target, done)
	if sh := w.env.sh; sh != nil {
		sh.Record(obs.LayerMPI, obs.OpPut, worldDst, len(buf), 0, t0, w.env.p.Now())
		sh.Add(obs.CtrRDMAPuts, 1)
		sh.Add(obs.CtrRDMABytes, int64(len(buf)))
	}
	return nil
}

// Get copies from the target's window at disp into buf (MPI_GET: the buffer
// must not be read until a flush; the virtual completion time is charged at
// the flush).
func (w *Win) Get(buf []byte, target, disp int) error {
	if err := w.checkAccess(target, "Get"); err != nil {
		return err
	}
	if err := w.checkRange(target, disp, len(buf), "Get"); err != nil {
		return err
	}
	pr := w.env.net.Params()
	worldDst := w.comm.ranks[target]
	t0 := w.env.p.Now()
	w.env.p.Advance(w.env.costs().GetNS)
	copy(buf, w.sh.bases[target][disp:])
	w.notePending(target, w.env.p.Now()+2*pr.PathLatency(w.env.p.ID(), worldDst)+pr.PathWireTime(w.env.p.ID(), worldDst, len(buf)))
	if sh := w.env.sh; sh != nil {
		sh.Record(obs.LayerMPI, obs.OpGet, worldDst, len(buf), 0, t0, w.env.p.Now())
		sh.Add(obs.CtrRDMAGets, 1)
		sh.Add(obs.CtrRDMABytes, int64(len(buf)))
		sh.CommAdd(worldDst, int64(len(buf)))
	}
	return nil
}

// Rput is Put returning a request that completes at *local* completion
// (MPI-3 semantics: remote completion still requires a flush).
func (w *Win) Rput(buf []byte, target, disp int) (*Request, error) {
	if err := w.Put(buf, target, disp); err != nil {
		return nil, err
	}
	r := newRequest(w.env, reqRMA, nil)
	r.completeT = w.env.p.Now()
	r.done.Store(true)
	return r, nil
}

// Rget is Get returning a request; its completion covers both local and
// remote completion (MPI-3 §11.3.5), so waiting on it makes buf readable.
func (w *Win) Rget(buf []byte, target, disp int) (*Request, error) {
	if err := w.checkAccess(target, "Rget"); err != nil {
		return nil, err
	}
	if err := w.checkRange(target, disp, len(buf), "Rget"); err != nil {
		return nil, err
	}
	pr := w.env.net.Params()
	worldDst := w.comm.ranks[target]
	t0 := w.env.p.Now()
	w.env.p.Advance(w.env.costs().GetNS)
	copy(buf, w.sh.bases[target][disp:])
	done := w.env.p.Now() + 2*pr.PathLatency(w.env.p.ID(), worldDst) + pr.PathWireTime(w.env.p.ID(), worldDst, len(buf))
	// Rget completes through its request, not a flush, but the epoch still
	// touched this peer: sparse flushes must cover its happens-before edge.
	w.touch(target)
	if sh := w.env.sh; sh != nil {
		sh.Record(obs.LayerMPI, obs.OpGet, worldDst, len(buf), 0, t0, w.env.p.Now())
		sh.Add(obs.CtrRDMAGets, 1)
		sh.Add(obs.CtrRDMABytes, int64(len(buf)))
		sh.CommAdd(worldDst, int64(len(buf)))
	}
	r := newRequest(w.env, reqRMA, nil)
	r.completeT = done
	r.done.Store(true)
	return r, nil
}

// Accumulate atomically combines buf into the target window with op
// (MPI_ACCUMULATE; atomic per element with respect to other accumulates).
func (w *Win) Accumulate(buf []byte, target, disp int, dt Datatype, op Op) error {
	if err := w.checkAccess(target, "Accumulate"); err != nil {
		return err
	}
	if err := w.checkRange(target, disp, len(buf), "Accumulate"); err != nil {
		return err
	}
	worldDst := w.comm.ranks[target]
	t0 := w.env.p.Now()
	done := w.env.layer.RMAPut(w.env.p, worldDst, len(buf), w.env.costs().AtomicNS)
	w.sh.atomMu[target].Lock()
	err := reduceInto(w.sh.bases[target][disp:disp+len(buf)], buf, dt, op)
	w.sh.atomMu[target].Unlock()
	if err != nil {
		return err
	}
	w.notePending(target, done)
	if sh := w.env.sh; sh != nil {
		sh.Record(obs.LayerMPI, obs.OpAccumulate, worldDst, len(buf), int(op), t0, w.env.p.Now())
		sh.Add(obs.CtrRDMAAtomics, 1)
		sh.Add(obs.CtrRDMABytes, int64(len(buf)))
	}
	// Wake a target parked in a busy-wait re-probe loop (the atomic landed).
	w.env.layer.Endpoint(worldDst).Poke()
	return nil
}

// GetAccumulate fetches the prior target contents into result and combines
// buf into the target with op, atomically. result may be nil with OpNoOp
// ... but then use Get; with op OpNoOp the fetch is pure (MPI_NO_OP).
func (w *Win) GetAccumulate(buf, result []byte, target, disp int, dt Datatype, op Op) error {
	if err := w.checkAccess(target, "GetAccumulate"); err != nil {
		return err
	}
	n := len(result)
	if op != OpNoOp && len(buf) != n {
		return fmt.Errorf("mpi: GetAccumulate origin (%d) and result (%d) sizes differ", len(buf), n)
	}
	if err := w.checkRange(target, disp, n, "GetAccumulate"); err != nil {
		return err
	}
	pr := w.env.net.Params()
	worldDst := w.comm.ranks[target]
	t0 := w.env.p.Now()
	w.env.p.Advance(w.env.costs().AtomicNS + 2*pr.PathLatency(w.env.p.ID(), worldDst) + pr.PathWireTime(w.env.p.ID(), worldDst, n))
	w.sh.atomMu[target].Lock()
	copy(result, w.sh.bases[target][disp:disp+n])
	var err error
	if op != OpNoOp {
		err = reduceInto(w.sh.bases[target][disp:disp+n], buf, dt, op)
	}
	w.sh.atomMu[target].Unlock()
	if err != nil {
		return err
	}
	w.notePending(target, w.env.p.Now())
	if sh := w.env.sh; sh != nil {
		sh.Record(obs.LayerMPI, obs.OpAccumulate, worldDst, n, int(op), t0, w.env.p.Now())
		sh.Add(obs.CtrRDMAAtomics, 1)
		sh.Add(obs.CtrRDMABytes, int64(n))
		sh.CommAdd(worldDst, int64(n))
	}
	return nil
}

// FetchAndOp is the single-element fast path of GetAccumulate
// (MPI_FETCH_AND_OP).
func (w *Win) FetchAndOp(buf, result []byte, target, disp int, dt Datatype, op Op) error {
	if len(result) != dt.Size() || (op != OpNoOp && len(buf) != dt.Size()) {
		return fmt.Errorf("mpi: FetchAndOp operates on exactly one %s element", dt)
	}
	return w.GetAccumulate(buf, result, target, disp, dt, op)
}

// CompareAndSwap atomically replaces the target element with origin if it
// equals compare, returning the prior value in result (MPI_COMPARE_AND_SWAP).
func (w *Win) CompareAndSwap(origin, compare, result []byte, target, disp int, dt Datatype) error {
	if err := w.checkAccess(target, "CompareAndSwap"); err != nil {
		return err
	}
	n := dt.Size()
	if len(origin) != n || len(compare) != n || len(result) != n {
		return fmt.Errorf("mpi: CompareAndSwap buffers must be exactly one %s element", dt)
	}
	if err := w.checkRange(target, disp, n, "CompareAndSwap"); err != nil {
		return err
	}
	pr := w.env.net.Params()
	worldDst := w.comm.ranks[target]
	t0 := w.env.p.Now()
	w.env.p.Advance(w.env.costs().AtomicNS + 2*pr.PathLatency(w.env.p.ID(), worldDst) + pr.PathWireTime(w.env.p.ID(), worldDst, n))
	w.sh.atomMu[target].Lock()
	tgt := w.sh.bases[target][disp : disp+n]
	copy(result, tgt)
	if string(tgt) == string(compare) {
		copy(tgt, origin)
	}
	w.sh.atomMu[target].Unlock()
	w.notePending(target, w.env.p.Now())
	if sh := w.env.sh; sh != nil {
		sh.Record(obs.LayerMPI, obs.OpAccumulate, worldDst, n, 0, t0, w.env.p.Now())
		sh.Add(obs.CtrRDMAAtomics, 1)
		sh.Add(obs.CtrRDMABytes, int64(n))
		sh.CommAdd(worldDst, int64(n))
	}
	return nil
}

// Flush completes all outstanding operations to target at the target
// (MPI_WIN_FLUSH). It blocks the caller until remote completion.
func (w *Win) Flush(target int) error {
	if err := w.checkAccess(target, "Flush"); err != nil {
		return err
	}
	w.flushTarget(target)
	return nil
}

// FlushLocal ensures local completion only (MPI_WIN_FLUSH_LOCAL); origin
// buffers of puts are immediately reusable in this implementation, so the
// charge is the bookkeeping scan.
func (w *Win) FlushLocal(target int) error {
	if err := w.checkAccess(target, "FlushLocal"); err != nil {
		return err
	}
	t0 := w.env.p.Now()
	w.env.p.Advance(w.env.costs().FlushScanNS)
	if sh := w.env.sh; sh != nil {
		sh.Record(obs.LayerMPI, obs.OpFlush, w.comm.ranks[target], 0, 0, t0, w.env.p.Now())
		sh.Add(obs.CtrFlushCalls, 1)
	}
	// Local completion defines get destinations (MPI-3 §11.5.4).
	w.env.san.FenceLocal()
	return nil
}

// FlushAll completes outstanding operations to every target. MPICH
// derivatives (MVAPICH, Cray MPI) implement this as a flush of each rank in
// the window's group, so the cost grows linearly with the communicator size
// — the scalability issue the paper analyzes in §4.1 and proposes
// MPI_WIN_RFLUSH to mitigate.
func (w *Win) FlushAll() error {
	if w.freed {
		return fmt.Errorf("mpi: FlushAll on freed window")
	}
	if !w.lockedAll {
		all := true
		for _, l := range w.locked {
			if !l {
				all = false
				break
			}
		}
		if !all {
			return fmt.Errorf("mpi: FlushAll outside a lock-all epoch")
		}
	}
	w.flushAllEpoch()
	return nil
}

// Rflush is the MPI_WIN_RFLUSH extension the paper proposes in §5: it
// starts a flush to target and returns a request, letting the caller
// overlap the completion latency instead of blocking. Waiting on the
// request establishes remote completion of all prior operations to target.
func (w *Win) Rflush(target int) (*Request, error) {
	if err := w.checkAccess(target, "Rflush"); err != nil {
		return nil, err
	}
	done := w.env.p.Now()
	if w.hasPending[target] {
		done += w.env.net.Params().LatencyNS
		if w.pendingT[target]+w.env.costs().FlushNS > done {
			done = w.pendingT[target] + w.env.costs().FlushNS
		}
		w.clearPending(target)
	}
	w.env.sh.Add(obs.CtrFlushCalls, 1)
	r := newRequest(w.env, reqRMA, nil)
	r.completeT = done
	r.done.Store(true)
	return r, nil
}

// RflushAll starts a flush to every target and returns one request that
// completes when all of them do. Unlike FlushAll, the linear scan is the
// only blocking part; completion latency is overlappable.
func (w *Win) RflushAll() (*Request, error) {
	if w.freed {
		return nil, fmt.Errorf("mpi: RflushAll on freed window")
	}
	// Unlike the blocking FlushAll, the request-generating form lets the
	// implementation complete only the targets with outstanding operations
	// (it hands back a handle instead of scanning the communicator), which
	// is precisely the scalability fix the paper argues for in §5.
	done := w.rflushAllEpoch()
	r := newRequest(w.env, reqRMA, nil)
	r.completeT = done
	r.done.Store(true)
	return r, nil
}

// SplitShared partitions the communicator into per-node groups, like
// MPI_COMM_SPLIT_TYPE with MPI_COMM_TYPE_SHARED.
func (c *Comm) SplitShared() (*Comm, error) {
	pr := c.env.net.Params()
	node := 0
	if pr.CoresPerNode > 0 {
		node = c.env.p.ID() / pr.CoresPerNode
	}
	return c.Split(node, c.myRank)
}

// WinAllocateShared collectively creates a window whose memory is directly
// load/store accessible by every rank of the communicator
// (MPI_WIN_ALLOCATE_SHARED, §2.2). All ranks must reside on one node;
// SharedQuery exposes each rank's portion for direct access.
func WinAllocateShared(c *Comm, size int) (*Win, error) {
	pr := c.env.net.Params()
	first := c.ranks[0]
	for _, wr := range c.ranks {
		if !pr.SameNode(first, wr) {
			return nil, fmt.Errorf("mpi: WinAllocateShared requires all ranks on one node (ranks %d and %d differ)", first, wr)
		}
	}
	w, err := WinAllocate(c, size)
	if err != nil {
		return nil, err
	}
	w.shared = true
	return w, nil
}

// SharedQuery returns rank's window memory for direct load/store access
// (MPI_WIN_SHARED_QUERY). Only valid on shared windows; the caller is
// responsible for synchronizing concurrent access (e.g. with Win.Fence
// semantics via Barrier, or atomics).
func (w *Win) SharedQuery(rank int) ([]byte, error) {
	if !w.shared {
		return nil, fmt.Errorf("mpi: SharedQuery on a non-shared window")
	}
	if err := w.comm.checkRank(rank, "SharedQuery"); err != nil {
		return nil, err
	}
	return w.sh.bases[rank], nil
}
