package mpi

import "fmt"

// Nonblocking collectives (MPI-3 §5.12): each call builds a per-rank
// schedule of communication rounds that advances whenever the returned
// handle is tested or waited on. Every rank of the communicator must issue
// the same nonblocking collectives in the same order; each operation draws
// a fresh tag window so overlapping operations never cross-match.

// tagIColl is the base of the nonblocking-collective tag space (above the
// blocking collectives' tags).
const tagIColl = TagUB + 4096

// icollStep is one round: issue starts the round's sends/receives and
// returns their requests; finish runs after they complete (e.g. folding a
// received buffer into the accumulator).
type icollStep struct {
	issue  func() ([]*Request, error)
	finish func() error
}

// CollRequest is the handle of an in-flight nonblocking collective.
type CollRequest struct {
	env   *Env
	steps []icollStep
	cur   int
	reqs  []*Request // outstanding requests of the current step
	state int        // 0: before issue, 1: issued, 2: done
	err   error
}

// Done reports completion without making progress.
func (r *CollRequest) Done() bool { return r.state == 2 && r.cur >= len(r.steps) }

// Test advances the schedule without blocking and reports completion.
func (r *CollRequest) Test() (bool, error) {
	for {
		if r.err != nil {
			return true, r.err
		}
		if r.cur >= len(r.steps) {
			return true, nil
		}
		step := &r.steps[r.cur]
		if r.state == 0 {
			reqs, err := step.issue()
			if err != nil {
				r.err = err
				return true, err
			}
			r.reqs = reqs
			r.state = 1
		}
		// Test every outstanding request of the round.
		for _, q := range r.reqs {
			if q == nil {
				continue
			}
			done, _, err := q.Test()
			if err != nil {
				r.err = err
				return true, err
			}
			if !done {
				return false, nil
			}
		}
		if step.finish != nil {
			if err := step.finish(); err != nil {
				r.err = err
				return true, err
			}
		}
		r.cur++
		r.state = 0
		r.reqs = nil
	}
}

// Wait blocks until the collective completes, driving MPI progress.
func (r *CollRequest) Wait() error {
	for {
		done, err := r.Test()
		if done {
			return err
		}
		if err := r.env.flt.ErrOp("icoll_wait"); err != nil {
			return err
		}
		// Block until something changes: either new arrivals or a queued
		// virtual-future arrival we can advance to.
		seq := r.env.ep.Seq()
		if r.env.advanceToPending() {
			continue
		}
		r.env.ep.WaitActivity(seq)
	}
}

// icollTags reserves a tag window for one nonblocking collective.
func (c *Comm) icollTags() int {
	base := tagIColl + c.icollSeq*128
	c.icollSeq++
	return base
}

// isendI/irecvI are the schedule building blocks on the collective context.
func (c *Comm) isendI(buf []byte, dest, tag int) *Request {
	return c.isendCtx(buf, dest, tag, c.ctx+1)
}

func (c *Comm) irecvI(buf []byte, src, tag int) *Request {
	return c.irecvCtx(buf, src, tag, c.ctx+1)
}

// kick eagerly issues the schedule's first round so communication starts
// at the I* call, not at the first Test/Wait — this is what buys the
// overlap. It must run only on fully composed schedules.
func (r *CollRequest) kick() *CollRequest {
	_, _ = r.Test()
	return r
}

// Ibarrier starts a nonblocking dissemination barrier.
func (c *Comm) Ibarrier() (*CollRequest, error) {
	r, err := c.buildIbarrier()
	if err != nil {
		return nil, err
	}
	return r.kick(), nil
}

func (c *Comm) buildIbarrier() (*CollRequest, error) {
	c.env.checkLive()
	n := c.Size()
	base := c.icollTags()
	r := &CollRequest{env: c.env}
	for k, round := 1, 0; k < n; k, round = k<<1, round+1 {
		dst := (c.myRank + k) % n
		src := (c.myRank - k + n) % n
		tag := base + round
		r.steps = append(r.steps, icollStep{
			issue: func() ([]*Request, error) {
				return []*Request{
					c.isendI(nil, dst, tag),
					c.irecvI(nil, src, tag),
				}, nil
			},
		})
	}
	return r, nil
}

// Ibcast starts a nonblocking binomial broadcast of buf from root.
func (c *Comm) Ibcast(buf []byte, dt Datatype, root int) (*CollRequest, error) {
	r, err := c.buildIbcast(buf, dt, root)
	if err != nil {
		return nil, err
	}
	return r.kick(), nil
}

func (c *Comm) buildIbcast(buf []byte, dt Datatype, root int) (*CollRequest, error) {
	c.env.checkLive()
	if err := c.checkRank(root, "Ibcast root"); err != nil {
		return nil, err
	}
	n := c.Size()
	base := c.icollTags()
	r := &CollRequest{env: c.env}
	vr := (c.myRank - root + n) % n
	mask := 1
	for mask < n {
		if vr&mask != 0 {
			src := (c.myRank - mask + n) % n
			r.steps = append(r.steps, icollStep{
				issue: func() ([]*Request, error) {
					return []*Request{c.irecvI(buf, src, base)}, nil
				},
			})
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vr+mask < n {
			dst := (c.myRank + mask) % n
			r.steps = append(r.steps, icollStep{
				issue: func() ([]*Request, error) {
					return []*Request{c.isendI(buf, dst, base)}, nil
				},
			})
		}
	}
	return r, nil
}

// Ireduce starts a nonblocking binomial reduction into recvBuf at root.
func (c *Comm) Ireduce(sendBuf, recvBuf []byte, dt Datatype, op Op, root int) (*CollRequest, error) {
	r, err := c.buildIreduce(sendBuf, recvBuf, dt, op, root)
	if err != nil {
		return nil, err
	}
	return r.kick(), nil
}

func (c *Comm) buildIreduce(sendBuf, recvBuf []byte, dt Datatype, op Op, root int) (*CollRequest, error) {
	c.env.checkLive()
	if err := c.checkRank(root, "Ireduce root"); err != nil {
		return nil, err
	}
	if len(sendBuf)%dt.Size() != 0 {
		return nil, fmt.Errorf("mpi: Ireduce buffer size %d not a multiple of %s size %d", len(sendBuf), dt, dt.Size())
	}
	n := c.Size()
	base := c.icollTags()
	r := &CollRequest{env: c.env}
	acc := append([]byte(nil), sendBuf...)
	tmp := make([]byte, len(sendBuf))
	vr := (c.myRank - root + n) % n
	for mask := 1; mask < n; mask <<= 1 {
		if vr&mask != 0 {
			dst := (c.myRank - mask + n) % n
			r.steps = append(r.steps, icollStep{
				issue: func() ([]*Request, error) {
					return []*Request{c.isendI(acc, dst, base)}, nil
				},
			})
			break
		}
		if vr+mask < n {
			src := (c.myRank + mask) % n
			r.steps = append(r.steps, icollStep{
				issue: func() ([]*Request, error) {
					return []*Request{c.irecvI(tmp, src, base)}, nil
				},
				finish: func() error { return reduceInto(acc, tmp, dt, op) },
			})
		}
	}
	if c.myRank == root {
		r.steps = append(r.steps, icollStep{
			issue: func() ([]*Request, error) { return nil, nil },
			finish: func() error {
				if len(recvBuf) < len(acc) {
					return fmt.Errorf("mpi: Ireduce recv buffer too small (%d < %d)", len(recvBuf), len(acc))
				}
				copy(recvBuf, acc)
				return nil
			},
		})
	}
	return r, nil
}

// Iallreduce starts a nonblocking reduce-to-0 + broadcast; every rank
// receives the result in recvBuf.
func (c *Comm) Iallreduce(sendBuf, recvBuf []byte, dt Datatype, op Op) (*CollRequest, error) {
	if len(recvBuf) < len(sendBuf) {
		return nil, fmt.Errorf("mpi: Iallreduce recv buffer too small (%d < %d)", len(recvBuf), len(sendBuf))
	}
	red, err := c.buildIreduce(sendBuf, recvBuf, dt, op, 0)
	if err != nil {
		return nil, err
	}
	bc, err := c.buildIbcast(recvBuf[:len(sendBuf)], dt, 0)
	if err != nil {
		return nil, err
	}
	red.steps = append(red.steps, bc.steps...)
	return red.kick(), nil
}

// Ialltoall starts a nonblocking all-to-all of equal blocks: all sends and
// receives are issued at once (the schedule has a single round).
func (c *Comm) Ialltoall(sendBuf, recvBuf []byte, dt Datatype) (*CollRequest, error) {
	c.env.checkLive()
	n := c.Size()
	if len(sendBuf)%n != 0 || len(recvBuf) < len(sendBuf) {
		return nil, fmt.Errorf("mpi: Ialltoall buffer sizes invalid (%d send, %d recv, %d ranks)", len(sendBuf), len(recvBuf), n)
	}
	blk := len(sendBuf) / n
	base := c.icollTags()
	r := &CollRequest{env: c.env}
	r.steps = append(r.steps, icollStep{
		issue: func() ([]*Request, error) {
			var reqs []*Request
			copy(recvBuf[c.myRank*blk:(c.myRank+1)*blk], sendBuf[c.myRank*blk:])
			for i := 1; i < n; i++ {
				dst := (c.myRank + i) % n
				src := (c.myRank - i + n) % n
				reqs = append(reqs,
					c.isendI(sendBuf[dst*blk:(dst+1)*blk], dst, base),
					c.irecvI(recvBuf[src*blk:(src+1)*blk], src, base))
			}
			return reqs, nil
		},
	})
	return r.kick(), nil
}
