package mpi

import (
	"fmt"
	"testing"
)

func TestIbarrierOverlaps(t *testing.T) {
	runMPI(t, 8, func(e *Env) error {
		c := e.CommWorld()
		r, err := c.Ibarrier()
		if err != nil {
			return err
		}
		// Overlapped local work while the barrier progresses.
		e.Proc().Advance(10_000)
		if err = r.Wait(); err != nil {
			return err
		}
		done, err := r.Test()
		if !done || err != nil {
			return fmt.Errorf("completed barrier re-test: %v %v", done, err)
		}
		return nil
	})
}

func TestIbcastMatchesBcast(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		runMPI(t, n, func(e *Env) error {
			c := e.CommWorld()
			buf := make([]int64, 4)
			if c.Rank() == n-1 {
				for i := range buf {
					buf[i] = int64(1000 + i)
				}
			}
			r, err := c.Ibcast(I64Bytes(buf), Int64, n-1)
			if err != nil {
				return err
			}
			if err := r.Wait(); err != nil {
				return err
			}
			for i := range buf {
				if buf[i] != int64(1000+i) {
					return fmt.Errorf("n=%d rank=%d: buf[%d]=%d", n, c.Rank(), i, buf[i])
				}
			}
			return nil
		})
	}
}

func TestIallreduceMatchesAllreduce(t *testing.T) {
	for _, n := range []int{2, 3, 7, 8} {
		runMPI(t, n, func(e *Env) error {
			c := e.CommWorld()
			in := []int64{int64(c.Rank() + 1), int64(c.Rank() * 2)}
			nb := make([]int64, 2)
			r, err := c.Iallreduce(I64Bytes(in), I64Bytes(nb), Int64, OpSum)
			if err != nil {
				return err
			}
			if err := r.Wait(); err != nil {
				return err
			}
			bl := make([]int64, 2)
			if err := c.Allreduce(I64Bytes(in), I64Bytes(bl), Int64, OpSum); err != nil {
				return err
			}
			if nb[0] != bl[0] || nb[1] != bl[1] {
				return fmt.Errorf("n=%d: Iallreduce %v != Allreduce %v", n, nb, bl)
			}
			return nil
		})
	}
}

func TestIalltoallMatchesAlltoall(t *testing.T) {
	runMPI(t, 6, func(e *Env) error {
		c := e.CommWorld()
		n := c.Size()
		send := make([]int32, n)
		for d := range send {
			send[d] = int32(c.Rank()*10 + d)
		}
		nb := make([]int32, n)
		r, err := c.Ialltoall(I32Bytes(send), I32Bytes(nb), Int32)
		if err != nil {
			return err
		}
		if err := r.Wait(); err != nil {
			return err
		}
		for s := 0; s < n; s++ {
			if nb[s] != int32(s*10+c.Rank()) {
				return fmt.Errorf("block from %d = %d", s, nb[s])
			}
		}
		return nil
	})
}

func TestConcurrentNonblockingCollectives(t *testing.T) {
	// Two overlapping nonblocking collectives issued in the same order on
	// every rank must not cross-match.
	runMPI(t, 4, func(e *Env) error {
		c := e.CommWorld()
		a := []int64{int64(c.Rank())}
		outA := make([]int64, 1)
		b := []int64{int64(c.Rank() * 100)}
		outB := make([]int64, 1)
		r1, err := c.Iallreduce(I64Bytes(a), I64Bytes(outA), Int64, OpSum)
		if err != nil {
			return err
		}
		r2, err := c.Iallreduce(I64Bytes(b), I64Bytes(outB), Int64, OpSum)
		if err != nil {
			return err
		}
		if err := r2.Wait(); err != nil { // out of order on purpose
			return err
		}
		if err := r1.Wait(); err != nil {
			return err
		}
		if outA[0] != 6 || outB[0] != 600 {
			return fmt.Errorf("cross-matched: %d, %d", outA[0], outB[0])
		}
		return nil
	})
}

func TestIreduceBufferValidation(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		if _, err := c.Ireduce(make([]byte, 7), nil, Int64, OpSum, 0); err == nil {
			return fmt.Errorf("bad element size accepted")
		}
		if _, err := c.Ibcast(nil, Int64, 5); err == nil {
			return fmt.Errorf("bad root accepted")
		}
		if _, err := c.Iallreduce(make([]byte, 16), make([]byte, 8), Int64, OpSum); err == nil {
			return fmt.Errorf("short recv accepted")
		}
		return nil
	})
}
