package mpi

import (
	"bytes"
	"testing"

	"cafmpi/internal/fabric"
	"cafmpi/internal/sim"
)

// collRun executes the Gather/Scatter/Allgather round under pf and returns
// every image's observed data plus the slowest final clock. The data must be
// identical between the flat and tree algorithms; the clocks need not be.
func collRun(t *testing.T, pf *fabric.Params, n, root int) (gathered, scattered, allgathered [][]byte, finish int64) {
	t.Helper()
	gathered = make([][]byte, n)
	scattered = make([][]byte, n)
	allgathered = make([][]byte, n)
	clocks := make([]int64, n)
	w := sim.NewWorld(n)
	if err := w.Run(func(p *sim.Proc) error {
		e := Init(p, fabric.AttachNet(p.World(), pf))
		c := e.CommWorld()
		me := c.Rank()
		defer func() { clocks[me] = p.Now() }()
		mine := []byte{byte(me), byte(me + 1), byte(me + 2)}
		all := make([]byte, 3*n)
		if err := c.Gather(mine, all, Byte, root); err != nil {
			return err
		}
		if me == root {
			gathered[me] = append([]byte(nil), all...)
		}
		// Scatter the gathered table back out: image i receives its own
		// contribution again.
		back := make([]byte, 3)
		if err := c.Scatter(all, back, Byte, root); err != nil {
			return err
		}
		scattered[me] = append([]byte(nil), back...)
		ag := make([]byte, 3*n)
		if err := c.Allgather(mine, ag, Byte); err != nil {
			return err
		}
		allgathered[me] = append([]byte(nil), ag...)
		return c.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	for _, cl := range clocks {
		if cl > finish {
			finish = cl
		}
	}
	return gathered, scattered, allgathered, finish
}

func TestTreeCollectivesMatchFlat(t *testing.T) {
	// The O(log P) binomial trees behind the scalable-sync switch must be
	// data-identical to the default flat algorithms, including non-power-of-
	// two sizes and nonzero roots (the vr-space rotation cases).
	for _, tc := range []struct{ n, root int }{
		{2, 0}, {5, 3}, {8, 0}, {8, 7}, {13, 5}, {64, 1},
	} {
		g1, s1, a1, _ := collRun(t, tp(), tc.n, tc.root)
		g2, s2, a2, _ := collRun(t, sp(), tc.n, tc.root)
		if !bytes.Equal(g1[tc.root], g2[tc.root]) {
			t.Errorf("n=%d root=%d: tree Gather %x, flat %x", tc.n, tc.root, g2[tc.root], g1[tc.root])
		}
		for r := 0; r < tc.n; r++ {
			if !bytes.Equal(s1[r], s2[r]) {
				t.Errorf("n=%d root=%d rank %d: tree Scatter %x, flat %x", tc.n, tc.root, r, s2[r], s1[r])
			}
			if !bytes.Equal(a1[r], a2[r]) {
				t.Errorf("n=%d root=%d rank %d: tree Allgather %x, flat %x", tc.n, tc.root, r, a2[r], a1[r])
			}
		}
	}
}

func TestTreeCollectivesDeterministicClocks(t *testing.T) {
	// Two identical sparse-mode runs must land on the same virtual clock:
	// the tree schedules (and the dirty-set walks beneath them) may not
	// depend on map iteration order or other nondeterminism.
	_, _, _, f1 := collRun(t, sp(), 64, 3)
	_, _, _, f2 := collRun(t, sp(), 64, 3)
	if f1 != f2 {
		t.Errorf("sparse collective clocks differ across identical runs: %d vs %d ns", f1, f2)
	}
}

func TestTreeCollectivesScaleBetterThanFlat(t *testing.T) {
	// At scale the binomial trees' O(log P) critical path must beat the flat
	// fan-in's O(P) root bottleneck outright.
	if testing.Short() {
		t.Skip("large-world comparison")
	}
	const n = 256
	_, _, _, flat := collRun(t, tp(), n, 0)
	_, _, _, tree := collRun(t, sp(), n, 0)
	if tree >= flat {
		t.Errorf("tree collectives at P=%d finished at %d ns, flat at %d ns; trees must be faster", n, tree, flat)
	}
}

func TestSubtreeWidthPartitionsRange(t *testing.T) {
	// The binomial trees rely on the vr-space invariant that node vr's own
	// block plus its children's subtrees tile [vr, vr+width) exactly — the
	// contiguity that lets an edge carry a whole subtree in one message.
	for _, n := range []int{1, 2, 3, 7, 8, 13, 64, 100} {
		if subtreeWidth(0, n) != n {
			t.Errorf("n=%d: root width %d, want %d", n, subtreeWidth(0, n), n)
		}
		for vr := 0; vr < n; vr++ {
			w := subtreeWidth(vr, n)
			if w < 1 || vr+w > n {
				t.Fatalf("n=%d vr=%d: width %d out of range", n, vr, w)
			}
			// Children of vr sit at vr+mask for each mask below vr's lowest
			// set bit (every mask for the root); their widths plus vr's own
			// block must sum to w.
			cnt := 1
			for mask := 1; mask < n && vr&mask == 0; mask <<= 1 {
				if vr+mask < n {
					cnt += subtreeWidth(vr+mask, n)
				}
			}
			if cnt != w {
				t.Errorf("n=%d vr=%d: children tile %d blocks, subtree width %d", n, vr, cnt, w)
			}
		}
	}
}
