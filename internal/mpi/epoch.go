package mpi

import (
	"cafmpi/internal/fabric"
	"cafmpi/internal/obs"
	"cafmpi/internal/obs/wallprof"
)

// epoch is the origin-side completion state of one window's access epoch,
// shared by Win and DynWin so the flush scan/blame sequences live in one
// place instead of four near-identical copies.
//
// Two charging modes:
//
//   - Default (paper-faithful): FlushAll and friends scan every rank of the
//     communicator at FlushScanNS apiece — the MPICH-derivative behaviour
//     whose linear growth the paper charts in Figure 4. This path is kept
//     bit-exact with the pre-refactor code.
//
//   - Sparse (fabric.MPICosts.SparseFlush, foMPI-like): the epoch tracks a
//     dirty-peer set updated by every RMA op, and the flush paths walk only
//     |dirty| peers. The set is cleared at epoch boundaries (FlushAll,
//     RflushAll, LockAll) and per peer on targeted Flush.
type epoch struct {
	env  *Env
	comm *Comm

	// Per-target (comm rank) completion tracking: the latest remote-
	// completion timestamp of issued operations, and whether any operation
	// is unflushed. pendingOps counts unflushed operations per target;
	// pendingTotal is their sum, feeding the pending_rma_max gauge.
	pendingT     []int64
	hasPending   []bool
	pendingOps   []int64
	pendingTotal int64

	// Scalable-sync mode state. dirty holds the comm ranks this epoch has
	// touched; peerScratch and worldScratch are reusable buffers for the
	// sorted walk (sorted iteration keeps the clock deterministic) and the
	// sanitizer's world-rank fence list.
	sparse       bool
	dirty        fabric.PeerSet
	peerScratch  []int
	worldScratch []int
}

// epInit sizes the epoch for comm and latches the mode from the platform.
func (ep *epoch) epInit(env *Env, comm *Comm) {
	ep.env = env
	ep.comm = comm
	n := comm.Size()
	ep.pendingT = make([]int64, n)
	ep.hasPending = make([]bool, n)
	ep.pendingOps = make([]int64, n)
	ep.sparse = env.costs().SparseFlush
	if ep.sparse {
		ep.dirty.Init(n)
	}
}

// notePending records a remote completion timestamp for target and, in
// sparse mode, marks the peer dirty. Every issuing path (Put/Get/
// Accumulate and the atomics) funnels through here, so the dirty set is
// exactly "peers this epoch touched".
func (ep *epoch) notePending(target int, t int64) {
	if t > ep.pendingT[target] {
		ep.pendingT[target] = t
	}
	ep.hasPending[target] = true
	ep.pendingOps[target]++
	ep.pendingTotal++
	ep.env.sh.Max(obs.CtrPendingRMAMax, ep.pendingTotal)
	ep.touch(target)
}

// touch marks target dirty without an outstanding timestamp — for
// operations like Rget whose completion rides a request rather than a
// flush, but whose happens-before edge a sparse flush must still cover.
// It also drives the on-demand connection model: first contact with a
// peer charges its eager-pool state.
func (ep *epoch) touch(target int) {
	if ep.sparse {
		ep.dirty.Add(target)
	}
	ep.env.connect(ep.comm.ranks[target])
}

// clearPending marks target flushed, releasing its outstanding-op count.
func (ep *epoch) clearPending(target int) {
	ep.hasPending[target] = false
	ep.pendingTotal -= ep.pendingOps[target]
	ep.pendingOps[target] = 0
}

// dirtyPeers returns the touched comm ranks in ascending order, reusing
// the epoch's scratch buffer. Sparse mode only.
func (ep *epoch) dirtyPeers() []int {
	ep.peerScratch = ep.dirty.AppendSorted(ep.peerScratch[:0])
	return ep.peerScratch
}

// worldRanks translates comm ranks to world ranks for the sanitizer's
// peer-scoped fence, reusing scratch.
func (ep *epoch) worldRanks(peers ...int) []int {
	ep.worldScratch = ep.worldScratch[:0]
	for _, t := range peers {
		ep.worldScratch = append(ep.worldScratch, ep.comm.ranks[t])
	}
	return ep.worldScratch
}

// flushTarget charges the MPI_WIN_FLUSH sequence for one target: wait out
// its outstanding completion timestamp plus FlushNS if anything is
// pending, otherwise the bookkeeping scan. Shared by Win.Flush,
// DynWin.Flush, and the Unlock paths; callers have already validated the
// epoch.
func (ep *epoch) flushTarget(target int) {
	wt := ep.env.wp.Begin(wallprof.SiteMPIFlush)
	c := ep.env.costs()
	p := ep.env.p
	t0 := p.Now()
	var waited int64
	pending := ep.hasPending[target]
	if pending {
		p.AdvanceTo(ep.pendingT[target])
		waited = p.Now() - t0
		p.Advance(c.FlushNS)
		ep.clearPending(target)
	} else {
		p.Advance(c.FlushScanNS)
	}
	if ep.sparse {
		ep.dirty.Remove(target)
	}
	if sh := ep.env.sh; sh != nil {
		end := p.Now()
		sh.Record(obs.LayerMPI, obs.OpFlush, ep.comm.ranks[target], 0, 0, t0, end)
		sh.Add(obs.CtrFlushCalls, 1)
		e := obs.Edge{Layer: obs.LayerMPI, Op: obs.OpFlush,
			Peer: int32(ep.comm.ranks[target]), Start: t0, End: end}
		if pending {
			e.AddComp(obs.CompFlushWait, waited)
			e.AddComp(obs.CompOverhead, c.FlushNS)
		} else {
			e.AddComp(obs.CompFlushScan, c.FlushScanNS)
		}
		sh.RecordEdge(e)
	}
	// Remote completion defines deferred-get destinations. A targeted flush
	// only orders operations to this peer, so sparse mode fences just it;
	// the default mode keeps the historical full fence.
	if ep.sparse {
		ep.env.san.FenceLocalPeers(ep.worldRanks(target))
	} else {
		ep.env.san.FenceLocal()
	}
	ep.env.wp.End(wallprof.SiteMPIFlush, wt)
}

// flushAllEpoch charges the MPI_WIN_FLUSH_ALL sequence. Default mode scans
// every rank of the communicator (the §4.1 bottleneck); sparse mode walks
// the dirty set in ascending rank order and clears it — cost proportional
// to what the epoch touched, not to world size.
func (ep *epoch) flushAllEpoch() {
	wt := ep.env.wp.Begin(wallprof.SiteMPIFlush)
	c := ep.env.costs()
	p := ep.env.p
	t0 := p.Now()
	var waited int64
	flushed := 0
	scanned := ep.comm.Size()
	var peers []int
	if ep.sparse {
		peers = ep.dirtyPeers()
		scanned = len(peers)
		for _, t := range peers {
			p.Advance(c.FlushScanNS)
			if ep.hasPending[t] {
				pre := p.Now()
				p.AdvanceTo(ep.pendingT[t])
				waited += p.Now() - pre
				p.Advance(c.FlushNS)
				ep.clearPending(t)
				flushed++
			}
		}
		ep.dirty.Clear()
	} else {
		for t := 0; t < ep.comm.Size(); t++ {
			p.Advance(c.FlushScanNS)
			if ep.hasPending[t] {
				pre := p.Now()
				p.AdvanceTo(ep.pendingT[t])
				waited += p.Now() - pre
				p.Advance(c.FlushNS)
				ep.clearPending(t)
				flushed++
			}
		}
	}
	if sh := ep.env.sh; sh != nil {
		end := p.Now()
		sh.Record(obs.LayerMPI, obs.OpFlushAll, -1, 0, scanned, t0, end)
		sh.Add(obs.CtrFlushAllCalls, 1)
		sh.Add(obs.CtrFlushAllScannedOps, int64(scanned))
		// The scan blame separates bookkeeping from genuine completion
		// waits, so the per-rank (or per-dirty-peer) walk is visible even
		// when nothing was pending. A sparse flush of an untouched epoch is
		// free; skip the zero-length edge.
		if !ep.sparse || end > t0 {
			e := obs.Edge{Layer: obs.LayerMPI, Op: obs.OpFlushAll,
				Peer: -1, Start: t0, End: end}
			e.AddComp(obs.CompFlushScan, c.FlushScanNS*int64(scanned))
			e.AddComp(obs.CompFlushWait, waited)
			e.AddComp(obs.CompOverhead, c.FlushNS*int64(flushed))
			sh.RecordEdge(e)
		}
	}
	if ep.sparse {
		// Happens-before edges reach the flushed (dirty) peers only: a
		// deferred get from an untouched peer stays unordered, so the
		// sanitizer still catches reads racing with it.
		ep.env.san.FenceLocalPeers(ep.worldRanks(peers...))
	} else {
		ep.env.san.FenceLocal()
	}
	ep.env.wp.End(wallprof.SiteMPIFlush, wt)
}

// rflushAllEpoch charges the request-generating flush-all (the paper's §5
// MPI_WIN_RFLUSH proposal) and returns the completion timestamp for the
// request. Only targets with outstanding operations are visited in either
// mode; sparse mode additionally clears the dirty set, closing the epoch
// window the request covers.
func (ep *epoch) rflushAllEpoch() int64 {
	wt := ep.env.wp.Begin(wallprof.SiteMPIFlush)
	c := ep.env.costs()
	p := ep.env.p
	done := p.Now()
	t0 := p.Now()
	any := false
	scanned := 0
	visit := func(t int) {
		if !ep.hasPending[t] {
			return
		}
		any = true
		scanned++
		p.Advance(c.FlushScanNS)
		if tt := ep.pendingT[t] + c.FlushNS; tt > done {
			done = tt
		}
		ep.clearPending(t)
	}
	if ep.sparse {
		for _, t := range ep.dirtyPeers() {
			visit(t)
		}
		ep.dirty.Clear()
	} else {
		for t := 0; t < ep.comm.Size(); t++ {
			visit(t)
		}
	}
	if any {
		if lat := p.Now() + ep.env.net.Params().LatencyNS; lat > done {
			done = lat
		}
	}
	if sh := ep.env.sh; sh != nil {
		end := p.Now()
		sh.Record(obs.LayerMPI, obs.OpFlushAll, -1, 0, scanned, t0, end)
		sh.Add(obs.CtrRflushAllCalls, 1)
		sh.Add(obs.CtrFlushAllScannedOps, int64(scanned))
		if end > t0 {
			e := obs.Edge{Layer: obs.LayerMPI, Op: obs.OpFlushAll,
				Peer: -1, Start: t0, End: end}
			e.AddComp(obs.CompFlushScan, c.FlushScanNS*int64(scanned))
			sh.RecordEdge(e)
		}
	}
	ep.env.wp.End(wallprof.SiteMPIFlush, wt)
	return done
}

// lockAllEpoch charges epoch-open cost. MPICH derivatives lazily acquire
// every rank (FlushScanNS × Size even under MPI_MODE_NOCHECK); sparse mode
// defers per-peer acquisition to first use, so opening is O(1). Also the
// dirty set's epoch-boundary reset.
func (ep *epoch) lockAllEpoch() {
	wt := ep.env.wp.Begin(wallprof.SiteMPIFlush)
	c := ep.env.costs()
	p := ep.env.p
	t0 := p.Now()
	scanned := ep.comm.Size()
	if ep.sparse {
		scanned = 1
		ep.dirty.Clear()
	}
	p.Advance(c.FlushScanNS * int64(scanned))
	if sh := ep.env.sh; sh != nil {
		end := p.Now()
		sh.Record(obs.LayerMPI, obs.OpLockAll, -1, 0, scanned, t0, end)
		sh.Add(obs.CtrLockAllCalls, 1)
		e := obs.Edge{Layer: obs.LayerMPI, Op: obs.OpLockAll,
			Peer: -1, Start: t0, End: end}
		e.AddComp(obs.CompFlushScan, c.FlushScanNS*int64(scanned))
		sh.RecordEdge(e)
	}
	ep.env.wp.End(wallprof.SiteMPIFlush, wt)
}

// dirtyCount exposes the dirty-set size for tests; -1 in default mode.
func (ep *epoch) dirtyCount() int {
	if !ep.sparse {
		return -1
	}
	return ep.dirty.Len()
}
