package mpi

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"cafmpi/internal/fabric"
	"cafmpi/internal/sim"
)

// tp returns small test fabric parameters.
func tp() *fabric.Params {
	return &fabric.Params{
		Name:           "test",
		LatencyNS:      1000,
		GapPerByteNS:   0.5,
		SendOverheadNS: 100,
		RecvOverheadNS: 100,
		EagerThreshold: 1024,
		FlopNS:         1,
		MemNS:          0.5,
		MPI: fabric.MPICosts{
			MatchNS: 50, PutNS: 300, GetNS: 300, AtomicNS: 400,
			FlushNS: 200, FlushScanNS: 10, WinSetupNS: 100,
			EagerSlotsPerPeer: 2, EagerSlotBytes: 1024, PeerStateBytes: 64,
			BaseFootprint: 1 << 20,
		},
		GASNet: fabric.GASNetCosts{PutNS: 100, GetNS: 100, AMNS: 80, PollNS: 20},
	}
}

// runMPI executes fn on n images with MPI initialized.
func runMPI(t *testing.T, n int, fn func(*Env) error) {
	t.Helper()
	w := sim.NewWorld(n)
	err := w.Run(func(p *sim.Proc) error {
		net := fabric.AttachNet(p.World(), tp())
		return fn(Init(p, net))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvBlocking(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		if c.Rank() == 0 {
			return c.Send([]byte("payload"), 1, 42)
		}
		buf := make([]byte, 16)
		st, err := c.Recv(buf, 0, 42)
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 42 || st.Count != 7 {
			return fmt.Errorf("status %+v, want {0 42 7}", st)
		}
		if string(buf[:st.Count]) != "payload" {
			return fmt.Errorf("payload %q", buf[:st.Count])
		}
		return nil
	})
}

func TestIsendIrecvOverlap(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		const k = 8
		if c.Rank() == 0 {
			var reqs []*Request
			for i := 0; i < k; i++ {
				r, err := c.Isend([]byte{byte(i)}, 1, i)
				if err != nil {
					return err
				}
				reqs = append(reqs, r)
			}
			return Waitall(reqs)
		}
		bufs := make([][]byte, k)
		var reqs []*Request
		for i := 0; i < k; i++ {
			bufs[i] = make([]byte, 1)
			// Post out of order: matching is by tag.
			r, err := c.Irecv(bufs[i], 0, k-1-i)
			if err != nil {
				return err
			}
			reqs = append(reqs, r)
		}
		if err := Waitall(reqs); err != nil {
			return err
		}
		for i := 0; i < k; i++ {
			if bufs[i][0] != byte(k-1-i) {
				return fmt.Errorf("recv %d got %d, want %d", i, bufs[i][0], k-1-i)
			}
		}
		return nil
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	runMPI(t, 4, func(e *Env) error {
		c := e.CommWorld()
		if c.Rank() != 0 {
			return c.Send([]byte{byte(c.Rank())}, 0, 10+c.Rank())
		}
		seen := make(map[int]bool)
		for i := 0; i < 3; i++ {
			buf := make([]byte, 1)
			st, err := c.Recv(buf, AnySource, AnyTag)
			if err != nil {
				return err
			}
			if int(buf[0]) != st.Source || st.Tag != 10+st.Source {
				return fmt.Errorf("inconsistent status %+v payload %d", st, buf[0])
			}
			seen[st.Source] = true
		}
		if len(seen) != 3 {
			return fmt.Errorf("saw senders %v, want 3 distinct", seen)
		}
		return nil
	})
}

func TestNonOvertakingMatchedInOrder(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		const k = 50
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				if err := c.Send([]byte{byte(i)}, 1, 7); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < k; i++ {
			buf := make([]byte, 1)
			if _, err := c.Recv(buf, 0, 7); err != nil {
				return err
			}
			if buf[0] != byte(i) {
				return fmt.Errorf("message %d overtaken by %d", i, buf[0])
			}
		}
		return nil
	})
}

func TestTruncationError(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		if c.Rank() == 0 {
			return c.Send(make([]byte, 100), 1, 0)
		}
		buf := make([]byte, 10)
		st, err := c.Recv(buf, 0, 0)
		if err == nil || !strings.Contains(err.Error(), "truncated") {
			return fmt.Errorf("want truncation error, got %v", err)
		}
		if st.Count != 10 {
			return fmt.Errorf("truncated count %d, want 10", st.Count)
		}
		return nil
	})
}

func TestRendezvousLargeMessage(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		big := make([]byte, 64<<10) // far above eager threshold
		if c.Rank() == 0 {
			for i := range big {
				big[i] = byte(i * 31)
			}
			return c.Send(big, 1, 1)
		}
		buf := make([]byte, len(big))
		if _, err := c.Recv(buf, 0, 1); err != nil {
			return err
		}
		for i := range buf {
			if buf[i] != byte(i*31) {
				return fmt.Errorf("corruption at %d", i)
			}
		}
		return nil
	})
}

func TestSendrecvRing(t *testing.T) {
	runMPI(t, 5, func(e *Env) error {
		c := e.CommWorld()
		n := c.Size()
		right, left := (c.Rank()+1)%n, (c.Rank()-1+n)%n
		out := []byte{byte(c.Rank())}
		in := make([]byte, 1)
		if _, err := c.Sendrecv(out, right, 3, in, left, 3); err != nil {
			return err
		}
		if in[0] != byte(left) {
			return fmt.Errorf("ring exchange got %d, want %d", in[0], left)
		}
		return nil
	})
}

func TestProbeThenRecv(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		if c.Rank() == 0 {
			return c.Send(make([]byte, 33), 1, 9)
		}
		st, err := c.Probe(AnySource, 9)
		if err != nil {
			return err
		}
		if st.Count != 33 || st.Source != 0 {
			return fmt.Errorf("probe status %+v", st)
		}
		buf := make([]byte, st.Count)
		if _, err = c.Recv(buf, st.Source, st.Tag); err != nil {
			return err
		}
		ok, _, err := c.Iprobe(AnySource, AnyTag)
		if err != nil {
			return err
		}
		if ok {
			return fmt.Errorf("Iprobe found a message after queue drained")
		}
		return nil
	})
}

func TestTestNonBlocking(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		if c.Rank() == 0 {
			// Give rank 1 time to spin on Test with nothing pending.
			buf := make([]byte, 1)
			if _, err := c.Recv(buf, 1, 2); err != nil { // ready signal
				return err
			}
			return c.Send([]byte{7}, 1, 1)
		}
		buf := make([]byte, 1)
		r, err := c.Irecv(buf, 0, 1)
		if err != nil {
			return err
		}
		if done, _, _ := r.Test(); done {
			return fmt.Errorf("Test reported done before send")
		}
		if err := c.Send([]byte{1}, 0, 2); err != nil {
			return err
		}
		for {
			done, st, err := r.Test()
			if err != nil {
				return err
			}
			if done {
				if st.Count != 1 || buf[0] != 7 {
					return fmt.Errorf("bad completion st=%+v buf=%v", st, buf)
				}
				return nil
			}
		}
	})
}

func TestWaitany(t *testing.T) {
	runMPI(t, 3, func(e *Env) error {
		c := e.CommWorld()
		if c.Rank() != 0 {
			return c.Send([]byte{byte(c.Rank())}, 0, c.Rank())
		}
		b1, b2 := make([]byte, 1), make([]byte, 1)
		r1, _ := c.Irecv(b1, 1, 1)
		r2, _ := c.Irecv(b2, 2, 2)
		reqs := []*Request{r1, r2}
		got := map[int]bool{}
		for len(got) < 2 {
			i, _, err := Waitany(reqs)
			if err != nil {
				return err
			}
			got[i] = true
			reqs[i] = nil
		}
		if b1[0] != 1 || b2[0] != 2 {
			return fmt.Errorf("payloads %d,%d", b1[0], b2[0])
		}
		return nil
	})
}

func TestSendToProcNull(t *testing.T) {
	runMPI(t, 1, func(e *Env) error {
		c := e.CommWorld()
		r, err := c.Isend([]byte{1}, ProcNull, 0)
		if err != nil {
			return err
		}
		if _, err := r.Wait(); err != nil {
			return err
		}
		return nil
	})
}

func TestInvalidArgsErrors(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		if _, err := c.Isend(nil, 5, 0); err == nil {
			return fmt.Errorf("send to rank 5 in 2-rank comm should fail")
		}
		if _, err := c.Isend(nil, 0, -3); err == nil {
			return fmt.Errorf("negative tag should fail")
		}
		if _, err := c.Irecv(nil, 9, 0); err == nil {
			return fmt.Errorf("recv from invalid rank should fail")
		}
		if _, err := c.Irecv(nil, ProcNull, 0); err == nil {
			return fmt.Errorf("recv from ProcNull should fail")
		}
		return nil
	})
}

func TestVirtualTimeMonotoneThroughTraffic(t *testing.T) {
	runMPI(t, 4, func(e *Env) error {
		c := e.CommWorld()
		last := e.Wtime()
		for i := 0; i < 10; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
			now := e.Wtime()
			if now < last {
				return fmt.Errorf("clock went backwards: %v -> %v", last, now)
			}
			if now == last {
				return fmt.Errorf("barrier charged no time")
			}
			last = now
		}
		return nil
	})
}

func TestCommDupIsolation(t *testing.T) {
	runMPI(t, 2, func(e *Env) error {
		c := e.CommWorld()
		d, err := c.Dup()
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := c.Send([]byte{1}, 1, 5); err != nil {
				return err
			}
			return d.Send([]byte{2}, 1, 5)
		}
		// Same tag and source: only the context distinguishes them.
		bd := make([]byte, 1)
		if _, err := d.Recv(bd, 0, 5); err != nil {
			return err
		}
		bc := make([]byte, 1)
		if _, err := c.Recv(bc, 0, 5); err != nil {
			return err
		}
		if bc[0] != 1 || bd[0] != 2 {
			return fmt.Errorf("context leakage: comm=%d dup=%d", bc[0], bd[0])
		}
		return nil
	})
}

func TestCommSplit(t *testing.T) {
	runMPI(t, 6, func(e *Env) error {
		c := e.CommWorld()
		color := c.Rank() % 2
		// Reverse key order inside each color group.
		sub, err := c.Split(color, -c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			return fmt.Errorf("split size %d, want 3", sub.Size())
		}
		// World ranks in the group sorted by descending world rank.
		wantRank := map[int]int{0: 2, 2: 1, 4: 0, 1: 2, 3: 1, 5: 0}[c.Rank()]
		if sub.Rank() != wantRank {
			return fmt.Errorf("world rank %d got sub rank %d, want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// Communication stays inside the split comm.
		sum := []int64{int64(c.Rank())}
		out := make([]int64, 1)
		if err := sub.Allreduce(I64Bytes(sum), I64Bytes(out), Int64, OpSum); err != nil {
			return err
		}
		want := int64(0 + 2 + 4)
		if color == 1 {
			want = 1 + 3 + 5
		}
		if out[0] != want {
			return fmt.Errorf("split allreduce got %d, want %d", out[0], want)
		}
		return nil
	})
}

func TestSplitUndefinedColor(t *testing.T) {
	runMPI(t, 4, func(e *Env) error {
		c := e.CommWorld()
		color := 0
		if c.Rank() == 3 {
			color = -1 // MPI_UNDEFINED
		}
		sub, err := c.Split(color, c.Rank())
		if err != nil {
			return err
		}
		if c.Rank() == 3 {
			if sub != nil {
				return fmt.Errorf("undefined color should yield nil comm")
			}
			return nil
		}
		if sub.Size() != 3 {
			return fmt.Errorf("split size %d, want 3", sub.Size())
		}
		return sub.Barrier()
	})
}

func TestFinalizePanics(t *testing.T) {
	w := sim.NewWorld(1)
	err := w.Run(func(p *sim.Proc) error {
		e := Init(p, fabric.AttachNet(p.World(), tp()))
		e.Finalize()
		defer func() { recover() }()
		_ = e.CommWorld().Barrier()
		return fmt.Errorf("communication after Finalize did not panic")
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: an echo round trip through a peer returns exactly the payload,
// for arbitrary payloads and tags.
func TestEchoProperty(t *testing.T) {
	f := func(payload []byte, tag16 uint16) bool {
		tag := int(tag16)
		var ok bool
		w := sim.NewWorld(2)
		err := w.Run(func(p *sim.Proc) error {
			e := Init(p, fabric.AttachNet(p.World(), tp()))
			c := e.CommWorld()
			if c.Rank() == 0 {
				if err := c.Send(payload, 1, tag); err != nil {
					return err
				}
				back := make([]byte, len(payload))
				if _, err := c.Recv(back, 1, tag); err != nil {
					return err
				}
				ok = bytes.Equal(back, payload)
				return nil
			}
			buf := make([]byte, len(payload))
			st, err := c.Recv(buf, 0, tag)
			if err != nil {
				return err
			}
			return c.Send(buf[:st.Count], 0, tag)
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryFootprintGrowsWithJobSize(t *testing.T) {
	foot := func(n int) int64 {
		var f int64
		w := sim.NewWorld(n)
		if err := w.Run(func(p *sim.Proc) error {
			e := Init(p, fabric.AttachNet(p.World(), tp()))
			if p.ID() == 0 {
				f = e.MemoryFootprint()
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return f
	}
	f4, f64 := foot(4), foot(64)
	if f64 <= f4 {
		t.Errorf("footprint should grow with job size: %d (4 ranks) vs %d (64 ranks)", f4, f64)
	}
}
