// Package mpi is an MPI-3 implementation for simulated images. It provides
// the subset of the standard that the paper's CAF-MPI runtime is built on:
// communicators and groups, tagged two-sided messaging with wildcards and
// request objects, the classic collective algorithms, and the MPI-3 RMA
// interface (allocated windows, passive-target lock_all epochs, put/get/
// accumulate/fetch-and-op/compare-and-swap, request-generating Rput/Rget,
// flush/flush_local/flush_all) plus the MPI_WIN_RFLUSH extension the paper
// proposes in §5.
//
// Each image calls Init once; all communication charges virtual time
// through the fabric cost model. Data movement is real: payloads and window
// memory are actual bytes, so programs are validated for correctness while
// the clocks reproduce scaling behaviour.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cafmpi/internal/fabric"
	"cafmpi/internal/faults"
	"cafmpi/internal/obs"
	"cafmpi/internal/obs/wallprof"
	"cafmpi/internal/sanitizer"
	"cafmpi/internal/sim"
)

// Wildcards and limits.
const (
	AnySource = -1
	AnyTag    = -1
	// ProcNull is a no-op peer: sends to it vanish, receives from it error.
	ProcNull = -2
	// TagUB is the largest user tag; internal traffic uses tags above it.
	TagUB = 1 << 24
)

// Message classes on the fabric layer.
const (
	clsP2P uint8 = iota + 1
	clsColl
)

// worldState is shared by every image's Env: context-id allocation and the
// window directory.
type worldState struct {
	nextCtx atomic.Int64
	winsMu  sync.Mutex
	wins    map[string]*winShared // guarded by winsMu
	dynWins map[string]*dynShared // guarded by winsMu
}

// Env is one image's MPI library instance (the result of MPI_Init).
type Env struct {
	p     *sim.Proc
	net   *fabric.Net
	layer *fabric.Layer
	ep    *fabric.Endpoint
	ws    *worldState

	world *Comm

	mu     sync.Mutex // guards posted (CompleteAt may come from peers)
	posted []*Request // posted receives, in post order

	// progSpec is the cached posted-receive matcher handed to the endpoint;
	// binding Filter once at Init removes the per-poll closure allocation the
	// progress engine used to pay. Its Filter reads posted, so every
	// endpoint call using it must run under mu.
	progSpec fabric.MatchSpec

	// sh is this image's observability shard, nil when off; cached at Init
	// so RMA/p2p hot paths pay a nil check only.
	sh *obs.Shard

	// san is this image's sanitizer handle, nil when off (methods are
	// nil-safe); cached at Init like sh.
	san *sanitizer.Image

	// wp is this image's wall-clock recorder, nil when wallprof is off
	// (methods nil-safe); cached at Init like sh.
	wp *wallprof.Rec

	// flt is the world failure latch (nil-safe when faults are off); every
	// blocking loop consults it so waits on a crashed peer return a typed
	// error instead of hanging.
	flt *faults.State

	// On-demand connection model (scalable-sync mode): instead of
	// preallocating per-peer eager pools and connection state for the whole
	// world at Init, each peer's share (perPeerBytes) is charged to the
	// footprint when that peer is first messaged — MVAPICH-style on-demand
	// connections. connected tracks world ranks already established.
	onDemand     bool
	connected    fabric.PeerSet
	perPeerBytes int64

	footprint int64
	finalized bool
}

// Init initializes MPI on image p. The returned Env is private to the
// image's goroutine. Calling Init twice on one image is an error in MPI;
// here each call returns a fresh independent Env, which tests exploit.
func Init(p *sim.Proc, net *fabric.Net) *Env {
	ws := p.World().Shared("mpi.world", func() any {
		w := &worldState{wins: make(map[string]*winShared), dynWins: make(map[string]*dynShared)}
		w.nextCtx.Store(2) // 0,1 reserved for COMM_WORLD
		return w
	}).(*worldState)

	env := &Env{
		p:     p,
		net:   net,
		layer: net.Layer("mpi"),
		ws:    ws,
	}
	env.ep = env.layer.Endpoint(p.ID())
	env.sh = obs.For(p)
	env.san = sanitizer.For(p)
	env.wp = wallprof.For(p)
	env.flt = faults.Enabled(p.World())
	env.progSpec = fabric.MatchSpec{Classes: fabric.Classes(clsP2P), Src: fabric.AnySrc, Filter: env.postedFilter}

	ranks := make([]int, p.N())
	for i := range ranks {
		ranks[i] = i
	}
	env.world = newComm(env, ranks, p.ID(), 0)

	// Connection state and per-peer eager buffer pools: MPICH derivatives
	// preallocate these, which is what makes the MPI runtime's memory
	// footprint grow with job size (Figure 1). The scalable-sync mode
	// switches to on-demand connections: only BaseFootprint up front, each
	// peer's share charged at first contact (see connect), keeping the
	// per-image footprint proportional to the communication graph degree.
	c := net.Params().MPI
	perPeer := int64(c.EagerSlotsPerPeer*c.EagerSlotBytes + c.PeerStateBytes)
	if c.SparseFlush {
		env.onDemand = true
		env.perPeerBytes = perPeer
		env.connected.Init(p.N())
		env.footprint = c.BaseFootprint
	} else {
		env.footprint = c.BaseFootprint + int64(p.N())*perPeer
	}
	return env
}

// connect charges per-peer connection state for world rank dst on first
// contact (on-demand mode only; no-op otherwise). Every path that first
// talks to a peer funnels through here: two-sided sends (isendCtx) and
// RMA issue (epoch.touch).
func (e *Env) connect(dst int) {
	if !e.onDemand || dst == e.p.ID() {
		return
	}
	if e.connected.Add(dst) {
		atomic.AddInt64(&e.footprint, e.perPeerBytes)
	}
}

// Proc returns the owning simulated image.
func (e *Env) Proc() *sim.Proc { return e.p }

// CommWorld returns MPI_COMM_WORLD.
func (e *Env) CommWorld() *Comm { return e.world }

// Wtime returns the image's virtual clock in seconds, like MPI_Wtime.
func (e *Env) Wtime() float64 { return float64(e.p.Now()) * 1e-9 }

// MemoryFootprint returns the bytes of memory this MPI instance holds:
// the modeled base runtime plus per-peer eager pools plus window memory.
func (e *Env) MemoryFootprint() int64 { return atomic.LoadInt64(&e.footprint) }

// Finalize marks the environment finalized. Communication after Finalize
// panics, mirroring MPI semantics closely enough for tests.
func (e *Env) Finalize() { e.finalized = true }

func (e *Env) checkLive() {
	if e.finalized {
		panic("mpi: communication after Finalize")
	}
}

// costs returns the platform's MPI layer costs.
func (e *Env) costs() *fabric.MPICosts { return &e.net.Params().MPI }

// Comm is an MPI communicator: an ordered group of world ranks plus an
// isolated matching context.
type Comm struct {
	env    *Env
	ranks  []int // comm rank -> world rank
	myRank int   // this image's rank within the comm
	ctx    int   // base context id; ctx is p2p, ctx+1 collectives

	// worldToRank inverts ranks (world rank -> comm rank, -1 outside), so
	// wildcard matching and status translation are O(1) per message instead
	// of a scan (or a map built per probe).
	worldToRank []int32

	// Cached endpoint match specs with their filters bound once. A Comm is
	// private to its image's goroutine, so mutating the probe fields between
	// calls is unshared state, not a race.
	probeSpec fabric.MatchSpec // probe/earliest matching; probeTag/probeAny below
	ctxSpec   fabric.MatchSpec // any p2p message addressed to this context
	probeTag  int
	probeAny  bool

	winSeq   int // windows created on this comm so far (collective order)
	icollSeq int // nonblocking collectives issued so far (collective order)
}

// newComm builds a communicator with its rank inversion and cached match
// specs. Every Comm must be created through it.
func newComm(env *Env, ranks []int, myRank, ctx int) *Comm {
	c := &Comm{env: env, ranks: ranks, myRank: myRank, ctx: ctx}
	c.worldToRank = make([]int32, env.p.N())
	for i := range c.worldToRank {
		c.worldToRank[i] = -1
	}
	for r, wr := range ranks {
		c.worldToRank[wr] = int32(r)
	}
	c.probeSpec = fabric.MatchSpec{Classes: fabric.Classes(clsP2P), Src: fabric.AnySrc, Filter: c.probeFilter}
	c.ctxSpec = fabric.MatchSpec{Classes: fabric.Classes(clsP2P), Src: fabric.AnySrc, Before: fabric.NoTimeGate, Filter: c.ctxFilter}
	return c
}

// probeFilter matches messages for the probe parameters staged in
// c.probeTag/c.probeAny (and probeSpec.Src); it runs under the endpoint
// lock.
func (c *Comm) probeFilter(m *fabric.Message) bool {
	if m.Ctx != c.ctx {
		return false
	}
	if c.probeTag != AnyTag && m.Tag != c.probeTag {
		return false
	}
	return !c.probeAny || c.worldToRank[m.Src] >= 0
}

// ctxFilter matches any point-to-point message addressed to this
// communicator's context.
func (c *Comm) ctxFilter(m *fabric.Message) bool { return m.Ctx == c.ctx }

// Rank returns the calling image's rank in the communicator.
func (c *Comm) Rank() int { return c.myRank }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.ranks) }

// WorldRank translates a comm rank to a world rank.
func (c *Comm) WorldRank(r int) int { return c.ranks[r] }

// Env returns the owning MPI environment.
func (c *Comm) Env() *Env { return c.env }

// Dup returns a duplicate communicator with a fresh context (collective).
func (c *Comm) Dup() (*Comm, error) {
	ctx, err := c.allocCtx()
	if err != nil {
		return nil, err
	}
	return newComm(c.env, append([]int(nil), c.ranks...), c.myRank, ctx), nil
}

// Split partitions the communicator by color, ordering each new group by
// (key, old rank), like MPI_Comm_split. A negative color returns nil
// (MPI_UNDEFINED): the image belongs to no new communicator but still
// participates in the collective.
func (c *Comm) Split(color, key int) (*Comm, error) {
	pairs := make([]int32, 2*c.Size())
	me := []int32{int32(color), int32(key)}
	if err := c.Allgather(I32Bytes(me), I32Bytes(pairs), Int32); err != nil {
		return nil, err
	}
	ctx, err := c.allocCtx()
	if err != nil {
		return nil, err
	}
	if color < 0 {
		return nil, nil
	}
	type member struct{ key, oldRank int }
	var group []member
	for r := 0; r < c.Size(); r++ {
		if int(pairs[2*r]) == color {
			group = append(group, member{int(pairs[2*r+1]), r})
		}
	}
	// Stable order by (key, old rank): insertion sort keeps it dependency-free.
	for i := 1; i < len(group); i++ {
		for j := i; j > 0 && (group[j].key < group[j-1].key ||
			(group[j].key == group[j-1].key && group[j].oldRank < group[j-1].oldRank)); j-- {
			group[j], group[j-1] = group[j-1], group[j]
		}
	}
	ranks := make([]int, 0, len(group))
	myRank := 0
	for i, m := range group {
		ranks = append(ranks, c.ranks[m.oldRank])
		if m.oldRank == c.myRank {
			myRank = i
		}
	}
	return newComm(c.env, ranks, myRank, ctx), nil
}

// allocCtx performs the collective context-id agreement: the group's rank 0
// draws from the world allocator and broadcasts within the parent. Each
// split/dup consumes two context ids (p2p + collectives).
func (c *Comm) allocCtx() (int, error) {
	var ctx int64
	if c.myRank == 0 {
		ctx = c.env.ws.nextCtx.Add(2) - 2
	}
	buf := []int64{ctx}
	if err := c.Bcast(I64Bytes(buf), Int64, 0); err != nil {
		return 0, err
	}
	return int(buf[0]), nil
}

// commRankOfWorld maps a world rank back into this communicator.
func (c *Comm) commRankOfWorld(world int) int {
	return int(c.worldToRank[world])
}

// EarliestMessage returns the smallest virtual arrival stamp among queued
// point-to-point messages addressed to this communicator (any source, any
// tag), for blocking pollers that must advance virtual time.
func (c *Comm) EarliestMessage() (int64, bool) {
	st := c.env.ep.PollStateFor(&c.ctxSpec)
	return st.Earliest, st.HasEarliest
}

func (c *Comm) checkRank(r int, what string) error {
	if r < 0 || r >= len(c.ranks) {
		return fmt.Errorf("mpi: %s rank %d out of range [0,%d)", what, r, len(c.ranks))
	}
	return nil
}

// ActivitySeq returns a counter that increases with every message arrival
// or completion event on this image's endpoint. Blocking pollers sample it
// before making progress and pass it to WaitActivity.
func (e *Env) ActivitySeq() uint64 { return e.ep.Seq() }

// WaitActivity blocks until the activity counter passes since, then returns
// the new value. It is the blocking network poll that CAF-MPI's event_wait
// is built on (§3.4): the wait parks on the endpoint, so arrivals of any
// kind wake it.
func (e *Env) WaitActivity(since uint64) uint64 { return e.ep.WaitActivity(since) }
