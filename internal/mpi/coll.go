package mpi

import "fmt"

// Internal tag space for collectives (above TagUB, on the comm's collective
// context). MPI requires every rank to call collectives on a communicator
// in the same order, and the fabric preserves per-sender stream order, so a
// fixed tag per algorithm round is unambiguous.
const (
	tagBarrier = TagUB + 1 + iota*64
	tagBcast
	tagReduce
	tagGather
	tagAllgather
	tagScatter
	tagAlltoall
	tagScan
	tagRMA // reserved for the RMA layer's internal traffic
)

// csend/crecv are blocking p2p on the collective context. The request
// handles never escape, so they return to the pool after a successful Wait.
func (c *Comm) csend(buf []byte, dest, tag int) error {
	r := c.isendCtx(buf, dest, tag, c.ctx+1)
	if _, err := r.Wait(); err != nil {
		return err
	}
	r.Free()
	return nil
}

func (c *Comm) crecv(buf []byte, src, tag int) (Status, error) {
	r := c.irecvCtx(buf, src, tag, c.ctx+1)
	st, err := r.Wait()
	if err != nil {
		return st, err
	}
	r.Free()
	return st, nil
}

func (c *Comm) csendrecv(sendBuf []byte, dest, sendTag int, recvBuf []byte, src, recvTag int) error {
	rr := c.irecvCtx(recvBuf, src, recvTag, c.ctx+1)
	sr := c.isendCtx(sendBuf, dest, sendTag, c.ctx+1)
	if _, err := sr.Wait(); err != nil {
		return err
	}
	if _, err := rr.Wait(); err != nil {
		return err
	}
	sr.Free()
	rr.Free()
	return nil
}

// Barrier blocks until every rank in the communicator has entered it
// (dissemination algorithm: ceil(log2 n) rounds).
func (c *Comm) Barrier() error {
	c.env.checkLive()
	n := c.Size()
	for k, round := 1, 0; k < n; k, round = k<<1, round+1 {
		dst := (c.myRank + k) % n
		src := (c.myRank - k + n) % n
		if err := c.csendrecv(nil, dst, tagBarrier+round, nil, src, tagBarrier+round); err != nil {
			return err
		}
	}
	return nil
}

// Bcast broadcasts buf from root to all ranks (binomial tree).
func (c *Comm) Bcast(buf []byte, dt Datatype, root int) error {
	c.env.checkLive()
	if err := c.checkRank(root, "bcast root"); err != nil {
		return err
	}
	n := c.Size()
	vr := (c.myRank - root + n) % n
	mask := 1
	for mask < n {
		if vr&mask != 0 {
			src := (c.myRank - mask + n) % n
			if _, err := c.crecv(buf, src, tagBcast); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vr+mask < n {
			dst := (c.myRank + mask) % n
			if err := c.csend(buf, dst, tagBcast); err != nil {
				return err
			}
		}
	}
	return nil
}

// Reduce combines sendBuf from every rank with op into recvBuf at root
// (binomial tree; op must be associative and commutative). recvBuf is
// significant only at root.
func (c *Comm) Reduce(sendBuf, recvBuf []byte, dt Datatype, op Op, root int) error {
	c.env.checkLive()
	if err := c.checkRank(root, "reduce root"); err != nil {
		return err
	}
	if len(sendBuf)%dt.Size() != 0 {
		return fmt.Errorf("mpi: Reduce buffer size %d not a multiple of %s size %d", len(sendBuf), dt, dt.Size())
	}
	n := c.Size()
	acc := append([]byte(nil), sendBuf...)
	tmp := make([]byte, len(sendBuf))
	vr := (c.myRank - root + n) % n
	for mask := 1; mask < n; mask <<= 1 {
		if vr&mask != 0 {
			dst := (c.myRank - mask + n) % n
			if err := c.csend(acc, dst, tagReduce); err != nil {
				return err
			}
			break
		}
		if vr+mask < n {
			src := (c.myRank + mask) % n
			if _, err := c.crecv(tmp, src, tagReduce); err != nil {
				return err
			}
			if err := reduceInto(acc, tmp, dt, op); err != nil {
				return err
			}
		}
	}
	if c.myRank == root {
		if len(recvBuf) < len(acc) {
			return fmt.Errorf("mpi: Reduce recv buffer too small (%d < %d)", len(recvBuf), len(acc))
		}
		copy(recvBuf, acc)
	}
	return nil
}

// Allreduce is Reduce followed by Bcast; every rank receives the result.
func (c *Comm) Allreduce(sendBuf, recvBuf []byte, dt Datatype, op Op) error {
	if len(recvBuf) < len(sendBuf) {
		return fmt.Errorf("mpi: Allreduce recv buffer too small (%d < %d)", len(recvBuf), len(sendBuf))
	}
	if err := c.Reduce(sendBuf, recvBuf, dt, op, 0); err != nil {
		return err
	}
	return c.Bcast(recvBuf[:len(sendBuf)], dt, 0)
}

// Gather collects equal-size blocks from every rank into recvBuf at root,
// ordered by rank. recvBuf is significant only at root and must hold
// Size()*len(sendBuf) bytes there.
func (c *Comm) Gather(sendBuf, recvBuf []byte, dt Datatype, root int) error {
	c.env.checkLive()
	if err := c.checkRank(root, "gather root"); err != nil {
		return err
	}
	blk := len(sendBuf)
	if c.myRank == root && len(recvBuf) < blk*c.Size() {
		return fmt.Errorf("mpi: Gather recv buffer too small (%d < %d)", len(recvBuf), blk*c.Size())
	}
	if c.hier() {
		return c.gatherTree(sendBuf, recvBuf, root)
	}
	if c.myRank != root {
		return c.csend(sendBuf, root, tagGather)
	}
	copy(recvBuf[root*blk:], sendBuf)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		if _, err := c.crecv(recvBuf[r*blk:(r+1)*blk], r, tagGather); err != nil {
			return err
		}
	}
	return nil
}

// Allgather collects equal-size blocks from every rank into every rank's
// recvBuf (ring algorithm: n-1 neighbor exchanges; gather+broadcast trees
// with O(log n) rounds in scalable-sync mode).
func (c *Comm) Allgather(sendBuf, recvBuf []byte, dt Datatype) error {
	c.env.checkLive()
	n := c.Size()
	blk := len(sendBuf)
	if len(recvBuf) < blk*n {
		return fmt.Errorf("mpi: Allgather recv buffer too small (%d < %d)", len(recvBuf), blk*n)
	}
	if c.hier() {
		return c.allgatherTree(sendBuf, recvBuf, dt)
	}
	copy(recvBuf[c.myRank*blk:], sendBuf)
	right := (c.myRank + 1) % n
	left := (c.myRank - 1 + n) % n
	for s := 0; s < n-1; s++ {
		sendIdx := (c.myRank - s + n) % n
		recvIdx := (c.myRank - s - 1 + n) % n
		if err := c.csendrecv(
			recvBuf[sendIdx*blk:(sendIdx+1)*blk], right, tagAllgather,
			recvBuf[recvIdx*blk:(recvIdx+1)*blk], left, tagAllgather); err != nil {
			return err
		}
	}
	return nil
}

// Scatter distributes equal-size blocks of sendBuf (significant at root)
// to every rank's recvBuf.
func (c *Comm) Scatter(sendBuf, recvBuf []byte, dt Datatype, root int) error {
	c.env.checkLive()
	if err := c.checkRank(root, "scatter root"); err != nil {
		return err
	}
	blk := len(recvBuf)
	if c.myRank == root && len(sendBuf) < blk*c.Size() {
		return fmt.Errorf("mpi: Scatter send buffer too small (%d < %d)", len(sendBuf), blk*c.Size())
	}
	if c.hier() {
		return c.scatterTree(sendBuf, recvBuf, root)
	}
	if c.myRank != root {
		_, err := c.crecv(recvBuf, root, tagScatter)
		return err
	}
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		if err := c.csend(sendBuf[r*blk:(r+1)*blk], r, tagScatter); err != nil {
			return err
		}
	}
	copy(recvBuf, sendBuf[root*blk:(root+1)*blk])
	return nil
}

// Alltoall exchanges equal-size blocks between all pairs (pairwise-exchange
// schedule, the algorithm MPICH uses for large messages: step i pairs rank
// with rank±i, keeping every link busy without hot spots).
func (c *Comm) Alltoall(sendBuf, recvBuf []byte, dt Datatype) error {
	c.env.checkLive()
	n := c.Size()
	if len(sendBuf)%n != 0 || len(recvBuf)%n != 0 {
		return fmt.Errorf("mpi: Alltoall buffers (%d,%d bytes) not divisible by comm size %d", len(sendBuf), len(recvBuf), n)
	}
	blk := len(sendBuf) / n
	if len(recvBuf) < blk*n {
		return fmt.Errorf("mpi: Alltoall recv buffer too small")
	}
	copy(recvBuf[c.myRank*blk:(c.myRank+1)*blk], sendBuf[c.myRank*blk:])
	for i := 1; i < n; i++ {
		dst := (c.myRank + i) % n
		src := (c.myRank - i + n) % n
		if err := c.csendrecv(
			sendBuf[dst*blk:(dst+1)*blk], dst, tagAlltoall,
			recvBuf[src*blk:(src+1)*blk], src, tagAlltoall); err != nil {
			return err
		}
	}
	return nil
}

// Alltoallv is Alltoall with per-destination counts and displacements
// (byte units).
func (c *Comm) Alltoallv(sendBuf []byte, sendCounts, sendDispls []int, recvBuf []byte, recvCounts, recvDispls []int) error {
	c.env.checkLive()
	n := c.Size()
	if len(sendCounts) != n || len(sendDispls) != n || len(recvCounts) != n || len(recvDispls) != n {
		return fmt.Errorf("mpi: Alltoallv count/displacement arrays must have comm size %d", n)
	}
	me := c.myRank
	copy(recvBuf[recvDispls[me]:recvDispls[me]+recvCounts[me]],
		sendBuf[sendDispls[me]:sendDispls[me]+sendCounts[me]])
	for i := 1; i < n; i++ {
		dst := (me + i) % n
		src := (me - i + n) % n
		if err := c.csendrecv(
			sendBuf[sendDispls[dst]:sendDispls[dst]+sendCounts[dst]], dst, tagAlltoall,
			recvBuf[recvDispls[src]:recvDispls[src]+recvCounts[src]], src, tagAlltoall); err != nil {
			return err
		}
	}
	return nil
}

// Scan computes the inclusive prefix reduction over ranks: rank r receives
// op(buf_0, ..., buf_r).
func (c *Comm) Scan(sendBuf, recvBuf []byte, dt Datatype, op Op) error {
	c.env.checkLive()
	if len(recvBuf) < len(sendBuf) {
		return fmt.Errorf("mpi: Scan recv buffer too small")
	}
	copy(recvBuf, sendBuf)
	if c.myRank > 0 {
		prev := make([]byte, len(sendBuf))
		if _, err := c.crecv(prev, c.myRank-1, tagScan); err != nil {
			return err
		}
		if err := reduceInto(recvBuf[:len(sendBuf)], prev, dt, op); err != nil {
			return err
		}
		// recvBuf = op(prefix, mine): combine order fixed by commutativity.
	}
	if c.myRank < c.Size()-1 {
		return c.csend(recvBuf[:len(sendBuf)], c.myRank+1, tagScan)
	}
	return nil
}

// Gatherv collects variable-size blocks at root: rank r contributes
// sendBuf, landing at recvBuf[displs[r]:displs[r]+counts[r]] (byte units).
// counts/displs/recvBuf are significant only at root.
func (c *Comm) Gatherv(sendBuf, recvBuf []byte, counts, displs []int, root int) error {
	c.env.checkLive()
	if err := c.checkRank(root, "gatherv root"); err != nil {
		return err
	}
	if c.myRank != root {
		return c.csend(sendBuf, root, tagGather)
	}
	if len(counts) != c.Size() || len(displs) != c.Size() {
		return fmt.Errorf("mpi: Gatherv count/displacement arrays must have comm size %d", c.Size())
	}
	if counts[root] != len(sendBuf) {
		return fmt.Errorf("mpi: Gatherv root contribution %d bytes, counts[root]=%d", len(sendBuf), counts[root])
	}
	copy(recvBuf[displs[root]:displs[root]+counts[root]], sendBuf)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		st, err := c.crecv(recvBuf[displs[r]:displs[r]+counts[r]], r, tagGather)
		if err != nil {
			return err
		}
		if st.Count != counts[r] {
			return fmt.Errorf("mpi: Gatherv rank %d sent %d bytes, counts[%d]=%d", r, st.Count, r, counts[r])
		}
	}
	return nil
}

// Scatterv distributes variable-size blocks from root: rank r receives
// sendBuf[displs[r]:displs[r]+counts[r]] into recvBuf. counts/displs/
// sendBuf are significant only at root.
func (c *Comm) Scatterv(sendBuf []byte, counts, displs []int, recvBuf []byte, root int) error {
	c.env.checkLive()
	if err := c.checkRank(root, "scatterv root"); err != nil {
		return err
	}
	if c.myRank != root {
		_, err := c.crecv(recvBuf, root, tagScatter)
		return err
	}
	if len(counts) != c.Size() || len(displs) != c.Size() {
		return fmt.Errorf("mpi: Scatterv count/displacement arrays must have comm size %d", c.Size())
	}
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		if err := c.csend(sendBuf[displs[r]:displs[r]+counts[r]], r, tagScatter); err != nil {
			return err
		}
	}
	copy(recvBuf, sendBuf[displs[root]:displs[root]+counts[root]])
	return nil
}

// ReduceScatterBlock reduces equal blocks across all ranks and scatters the
// result: every rank receives the combined block r of the concatenated
// inputs (MPI_REDUCE_SCATTER_BLOCK). Implemented as reduce-to-0 + scatter.
func (c *Comm) ReduceScatterBlock(sendBuf, recvBuf []byte, dt Datatype, op Op) error {
	c.env.checkLive()
	n := c.Size()
	if len(sendBuf)%n != 0 {
		return fmt.Errorf("mpi: ReduceScatterBlock send size %d not divisible by comm size %d", len(sendBuf), n)
	}
	blk := len(sendBuf) / n
	if len(recvBuf) < blk {
		return fmt.Errorf("mpi: ReduceScatterBlock recv buffer too small (%d < %d)", len(recvBuf), blk)
	}
	var full []byte
	if c.myRank == 0 {
		full = make([]byte, len(sendBuf))
	}
	if err := c.Reduce(sendBuf, full, dt, op, 0); err != nil {
		return err
	}
	return c.Scatter(full, recvBuf[:blk], dt, 0)
}
