package mpi

import "cafmpi/internal/elem"

// Datatype identifies an element type for typed operations; it aliases
// elem.Kind so the MPI layer, the CAF runtime and the kernels share one set
// of element semantics.
type Datatype = elem.Kind

// Predefined datatypes.
const (
	Byte       = elem.Byte
	Int32      = elem.Int32
	Int64      = elem.Int64
	Uint64     = elem.Uint64
	Float64    = elem.Float64
	Complex128 = elem.Complex128
)

// Op is a reduction operator (alias of elem.Op).
type Op = elem.Op

// Predefined reduction operators. OpReplace is MPI_REPLACE (accumulate
// only); OpNoOp is MPI_NO_OP (fetch-only accumulate).
const (
	OpSum     = elem.Sum
	OpProd    = elem.Prod
	OpMax     = elem.Max
	OpMin     = elem.Min
	OpBAnd    = elem.BAnd
	OpBOr     = elem.BOr
	OpBXor    = elem.BXor
	OpReplace = elem.Replace
	OpNoOp    = elem.NoOp
)

// Byte-view helpers re-exported from elem for callers building MPI buffers.
var (
	F64Bytes  = elem.F64Bytes
	I64Bytes  = elem.I64Bytes
	U64Bytes  = elem.U64Bytes
	I32Bytes  = elem.I32Bytes
	C128Bytes = elem.C128Bytes
	BytesF64  = elem.BytesF64
	BytesI64  = elem.BytesI64
	BytesU64  = elem.BytesU64
	BytesI32  = elem.BytesI32
	BytesC128 = elem.BytesC128
)

// reduceInto forwards to elem.ReduceInto.
func reduceInto(acc, in []byte, dt Datatype, op Op) error {
	return elem.ReduceInto(acc, in, dt, op)
}
