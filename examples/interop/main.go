// Interop: the paper's Figure 2 program, live. Image 0 performs a coarray
// write while every image enters an MPI barrier. Whether this terminates
// depends on the CAF implementation:
//
//   - CAF-GASNet with AM-mediated writes: the write needs the *target* to
//     poll the CAF runtime, but the target is blocked inside MPI_BARRIER of
//     a separate MPI library that knows nothing about CAF — deadlock.
//
//   - CAF-GASNet with RDMA writes: completes (no target involvement), but
//     the application still pays for two redundant runtimes.
//
//   - CAF-MPI: one shared runtime; the one-sided MPI_PUT completes without
//     target involvement, and the same MPI library serves the barrier.
//
//     go run ./examples/interop
package main

import (
	"fmt"
	"time"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
	"cafmpi/internal/mpi"
	"cafmpi/internal/sim"
)

func scenario(sub caf.Substrate, amWrite bool) (outcome string, runtimeMB float64) {
	platform := fabric.Platform("fusion")
	w := sim.NewWorld(2)
	var mb float64
	err := w.RunTimeout(2*time.Second, func(p *sim.Proc) error {
		cfg := caf.Config{Substrate: sub, Platform: platform}
		cfg.GASNetOptions.AMWrite = amWrite
		im, err := caf.Boot(p, cfg)
		if err != nil {
			return err
		}
		a, err := im.AllocCoarray(im.World(), 1<<16)
		if err != nil {
			return err
		}

		// The application's MPI library: shared under CAF-MPI, a second
		// independent runtime under CAF-GASNet (Figure 1's duplication).
		var comm *mpi.Comm
		if env, err := caf.MPIEnv(im); err == nil {
			comm = env.CommWorld()
			if p.ID() == 0 {
				mb = float64(im.MemoryFootprint()) / (1 << 20)
			}
		} else {
			env := mpi.Init(p, fabric.AttachNet(p.World(), platform))
			comm = env.CommWorld()
			if p.ID() == 0 {
				mb = float64(im.MemoryFootprint()+env.MemoryFootprint()) / (1 << 20)
			}
		}

		if im.ID() == 0 {
			// Figure 2 line 8: A(:)[1] = A(:)
			if err := a.Put(1, 0, a.Local()); err != nil {
				return err
			}
		}
		// Figure 2 line 11: CALL MPI_BARRIER(MPI_COMM_WORLD, IERR)
		return comm.Barrier()
	})
	switch {
	case err == sim.ErrTimeout:
		return "DEADLOCK (timed out)", mb
	case err != nil:
		return fmt.Sprintf("error: %v", err), mb
	default:
		return "completed", mb
	}
}

func main() {
	fmt.Println("Figure 2: coarray write on image 0, then MPI_BARRIER on all images")
	fmt.Println()
	for _, c := range []struct {
		name    string
		sub     caf.Substrate
		amWrite bool
	}{
		{"CAF-GASNet + separate MPI, AM-mediated writes", caf.GASNet, true},
		{"CAF-GASNet + separate MPI, RDMA writes       ", caf.GASNet, false},
		{"CAF-MPI (single shared runtime)              ", caf.MPI, false},
	} {
		outcome, mb := scenario(c.sub, c.amWrite)
		fmt.Printf("  %s -> %-22s (runtime memory %.1f MB/process)\n", c.name, outcome, mb)
	}
}
