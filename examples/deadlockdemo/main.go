// Deadlockdemo runs the two canonical sync-discipline bugs that caflint's
// interprocedural passes exist to catch, as live programs:
//
//  1. A rank-branched barrier: image 0 enters a collective no other image
//     reaches, so it waits forever (barriermatch flags this statically).
//  2. An out-of-epoch put: an MPI_PUT issued before any Lock/LockAll, which
//     the runtime rejects as an MPI-3 RMA usage violation (epochcheck flags
//     it statically).
//
// Both findings are deliberately present and carry scoped //caflint:allow
// annotations so the repository sweep stays clean; CI's regression step
// asserts — via `caflint -json` — that exactly these suppressed findings are
// still detected. If a pass regresses and goes silent here, CI fails.
//
//	go run ./examples/deadlockdemo
package main

import (
	"fmt"
	"time"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
	"cafmpi/internal/mpi"
	"cafmpi/internal/sim"
)

// rankBranchedBarrier boots four images and has image 0 alone enter a
// barrier. The other images return; image 0 blocks until the wall-clock
// watchdog fires.
func rankBranchedBarrier() string {
	w := sim.NewWorld(4)
	err := w.RunTimeout(2*time.Second, func(p *sim.Proc) error {
		im, err := caf.Boot(p, caf.Config{Substrate: caf.MPI, Platform: fabric.Platform("fusion")})
		if err != nil {
			return err
		}
		if im.ID() == 0 {
			//caflint:allow barriermatch -- deliberate deadlock fixture: CI asserts this suppressed finding is still reported
			return im.World().Barrier()
		}
		return nil
	})
	switch {
	case err == sim.ErrTimeout:
		return "DEADLOCK (timed out): image 0 waits in a barrier no other image reaches"
	case err != nil:
		return fmt.Sprintf("failed differently: %v", err)
	default:
		return "completed?! the rank-branched barrier should deadlock"
	}
}

// outOfEpochPut allocates a window and issues a put before opening any
// access epoch. The runtime returns the MPI-3 usage error instead of
// corrupting the target silently.
func outOfEpochPut() string {
	w := sim.NewWorld(2)
	var verdict string
	err := w.RunTimeout(2*time.Second, func(p *sim.Proc) error {
		env := mpi.Init(p, fabric.AttachNet(p.World(), fabric.Platform("fusion")))
		comm := env.CommWorld()
		win, err := mpi.WinAllocate(comm, 64)
		if err != nil {
			return err
		}
		if p.ID() == 0 {
			buf := []byte("out-of-epoch write")
			//caflint:allow epochcheck -- deliberate RMA-outside-epoch fixture: CI asserts this suppressed finding is still reported
			if perr := win.Put(buf, 1, 0); perr != nil {
				verdict = fmt.Sprintf("runtime rejected it: %v", perr)
			} else {
				verdict = "runtime accepted an out-of-epoch put?!"
			}
		}
		if err := comm.Barrier(); err != nil {
			return err
		}
		return win.Free()
	})
	if err != nil {
		return fmt.Sprintf("failed differently: %v", err)
	}
	return verdict
}

func main() {
	fmt.Println("bug 1: collective reachable only under rank-dependent control flow")
	fmt.Println("   ", rankBranchedBarrier())
	fmt.Println("bug 2: RMA issued outside any passive-target access epoch")
	fmt.Println("   ", outOfEpochPut())
	fmt.Println("caflint flags both statically: go run ./cmd/caflint ./examples/deadlockdemo")
}
