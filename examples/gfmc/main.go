// GFMC-style hybrid: the paper's §1/§7 motivating application shape.
// Nuclear/quantum Monte Carlo codes (GFMC, QMCPACK) keep a large read-mostly
// table on every node for their sequential kernels and use MPI for ensemble
// statistics; as the tables outgrow node memory, the paper proposes
// declaring them as coarrays so the runtime spreads them across images and
// turns loads into one-sided reads — while the MPI layer keeps serving the
// statistics, on the same runtime.
//
// This miniapp builds a large distributed lookup table (caf.DistArray),
// runs a Monte Carlo walker loop whose energy kernel gathers random table
// windows (remote one-sided reads), and accumulates ensemble statistics
// with a plain MPI allreduce each sweep.
//
//	go run ./examples/gfmc
package main

import (
	"fmt"
	"log"
	"math"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
	"cafmpi/internal/mpi"
)

const (
	images    = 8
	tableSize = 1 << 16 // distributed potential table
	walkers   = 64      // per image
	sweeps    = 10
	window    = 32 // table window gathered per walker step
)

func main() {
	cfg := caf.Config{Substrate: caf.MPI, Platform: fabric.Platform("edison")}
	err := caf.Run(images, cfg, func(im *caf.Image) error {
		// The "too big for one node" table, spread over all images.
		table, err := caf.NewDistArray(im, im.World(), tableSize)
		if err != nil {
			return err
		}
		lo, hi := table.LocalRange()
		loc := table.Local()
		for k := range loc {
			g := lo + k
			loc[k] = math.Exp(-float64(g%977)/977.0) * math.Cos(float64(g)/1811.0)
		}
		if err = table.Barrier(); err != nil {
			return err
		}
		_ = hi

		// Direct MPI access on the same runtime for the ensemble statistics.
		env, err := caf.MPIEnv(im)
		if err != nil {
			return err
		}
		comm := env.CommWorld()

		rng := im.Proc().Rng()
		pos := make([]int, walkers)
		for w := range pos {
			pos[w] = rng.Intn(tableSize - window)
		}

		buf := make([]float64, window)
		var energy float64
		for s := 0; s < sweeps; s++ {
			local := 0.0
			for w := 0; w < walkers; w++ {
				// Walker proposes a move, gathers its table window (a
				// one-sided read that may span images) and scores it.
				pos[w] = (pos[w] + rng.Intn(2*window)) % (tableSize - window)
				if err := table.GetSlice(pos[w], buf); err != nil {
					return err
				}
				score := 0.0
				for _, v := range buf {
					score += v * v
				}
				im.Compute(int64(2 * window))
				local += score
			}
			// Ensemble statistics over all images: MPI on the shared runtime.
			sum := make([]float64, 1)
			if err := comm.Allreduce(mpi.F64Bytes([]float64{local}), mpi.F64Bytes(sum), mpi.Float64, mpi.OpSum); err != nil {
				return err
			}
			energy = sum[0] / float64(images*walkers)
		}

		if im.ID() == 0 {
			fmt.Printf("gfmc-style hybrid: table %d elements over %d images, %d walkers x %d sweeps\n",
				tableSize, images, images*walkers, sweeps)
			fmt.Printf("  final ensemble energy %.6f; virtual time %.3f ms; runtime memory %.1f MB/process (single shared runtime)\n",
				energy, im.Now()*1e3, float64(im.MemoryFootprint())/(1<<20))
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
