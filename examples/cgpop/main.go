// CGPOP: the hybrid MPI+CAF miniapp from the paper's §4.4 — a conjugate
// gradient ocean-model solver whose halo exchanges are CAF one-sided
// operations (PUSH or PULL style) and whose GlobalSum is a plain MPI
// reduction, both served by one runtime under CAF-MPI.
//
//	go run ./examples/cgpop
package main

import (
	"fmt"
	"log"

	"cafmpi/caf"
	"cafmpi/internal/cgpop"
	"cafmpi/internal/fabric"
)

func main() {
	for _, variant := range []struct {
		sub  caf.Substrate
		pull bool
	}{
		{caf.MPI, false},
		{caf.MPI, true},
		{caf.GASNet, false},
		{caf.GASNet, true},
	} {
		cfg := caf.Config{Substrate: variant.sub, Platform: fabric.Platform("fusion")}
		err := caf.Run(8, cfg, func(im *caf.Image) error {
			res, err := cgpop.Run(im, cgpop.Config{NX: 128, NY: 256, Iters: 50, Pull: variant.pull})
			if err != nil {
				return err
			}
			if im.ID() == 0 {
				mode := "PUSH"
				if variant.pull {
					mode = "PULL"
				}
				fmt.Printf("CGPOP %-6s %-4s residual %.3e -> %.3e in %.4f virtual ms (dual runtime: %-5v, runtime memory %.1f MB)\n",
					variant.sub, mode, res.InitialNorm, res.FinalNorm, res.Seconds*1e3,
					res.DualRuntime, float64(res.RuntimeMemory)/(1<<20))
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	}
}
