// Quickstart: the smallest useful CAF 2.0 program — allocate a coarray,
// write to a neighbor one-sidedly, synchronize with events, and reduce a
// value across the team.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
)

func main() {
	cfg := caf.Config{
		Substrate: caf.MPI, // the paper's CAF-MPI runtime; try caf.GASNet too
		Platform:  fabric.Platform("fusion"),
	}
	err := caf.Run(8, cfg, func(im *caf.Image) error {
		world := im.World()

		// A coarray: 64 bytes of remotely accessible memory on every image.
		greetings, err := im.AllocCoarray(world, 64)
		if err != nil {
			return err
		}
		// One event slot per image, used as a "data arrived" doorbell.
		arrived, err := im.NewEvents(world, 1)
		if err != nil {
			return err
		}

		// Every image writes a greeting into its right neighbor's coarray
		// (a one-sided put: the neighbor does not participate), then rings
		// the neighbor's doorbell. Notify also releases the write (§3.4).
		right := (im.ID() + 1) % im.N()
		msg := fmt.Sprintf("hello from image %d", im.ID())
		if err := greetings.PutDeferred(right, 0, []byte(msg)); err != nil {
			return err
		}
		if err := arrived.Notify(right, 0); err != nil {
			return err
		}

		// Wait for our own doorbell, then read what the left neighbor wrote.
		if err := arrived.Wait(0); err != nil {
			return err
		}
		fmt.Printf("image %d received: %q\n", im.ID(), string(greetings.Local()[:len(msg)]))

		// A team collective: sum of all image ids.
		sum := make([]int64, 1)
		if err := world.Allreduce(caf.I64Bytes([]int64{int64(im.ID())}), caf.I64Bytes(sum), caf.Int64, caf.OpSum); err != nil {
			return err
		}
		if im.ID() == 0 {
			fmt.Printf("sum of image ids: %d (virtual time %.3f us)\n", sum[0], im.Now()*1e6)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
