// Heat: 1-D heat diffusion with halo exchange — the canonical stencil
// pattern the paper's CGPOP miniapp generalizes. Each image owns a strip of
// the rod; every step it pushes its boundary cells into the neighbors' halo
// slots with one-sided coarray writes and synchronizes with events. Halo
// slots are double-buffered by step parity: a neighbor may run one step
// ahead (the events allow no more), so writes for step s+1 land in the
// other slot while step s is still being read. A final reduction checks
// that heat is conserved.
//
//	go run ./examples/heat
package main

import (
	"fmt"
	"log"
	"math"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
)

const (
	images   = 8
	cellsPer = 128  // rod cells per image
	steps    = 400  // time steps
	alpha    = 0.25 // diffusion number (stable: <= 0.5)
)

func main() {
	cfg := caf.Config{Substrate: caf.MPI, Platform: fabric.Platform("edison")}
	err := caf.Run(images, cfg, func(im *caf.Image) error {
		world := im.World()
		n := cellsPer

		// Coarray layout (float64 each):
		//   [0..1]      left halo, slots for even/odd steps
		//   [2..n+1]    interior cells
		//   [n+2..n+3]  right halo, slots for even/odd steps
		field, err := im.AllocCoarray(world, (n+4)*8)
		if err != nil {
			return err
		}
		u := caf.BytesF64(field.Local())
		interior := u[2 : n+2]
		evs, err := im.NewEvents(world, 2)
		if err != nil {
			return err
		}
		const fromLeft, fromRight = 0, 1

		// Initial condition: a hot spike in the middle of the global rod.
		total := images * n
		for i := 0; i < n; i++ {
			if im.ID()*n+i == total/2 {
				interior[i] = 1000
			}
		}
		initialHeat := localSum(interior)

		next := make([]float64, n)
		left, right := im.ID()-1, im.ID()+1
		for s := 0; s < steps; s++ {
			par := s % 2
			// Push boundary cells into the neighbors' parity halo slots.
			if left >= 0 {
				if err := field.PutDeferred(left, (n+2+par)*8, caf.F64Bytes(interior[:1])); err != nil {
					return err
				}
				if err := evs.Notify(left, fromRight); err != nil {
					return err
				}
			}
			if right < im.N() {
				if err := field.PutDeferred(right, par*8, caf.F64Bytes(interior[n-1:])); err != nil {
					return err
				}
				if err := evs.Notify(right, fromLeft); err != nil {
					return err
				}
			}
			haloL, haloR := interior[0], interior[n-1] // insulated ends
			if left >= 0 {
				if err := evs.Wait(fromLeft); err != nil {
					return err
				}
				haloL = u[par]
			}
			if right < im.N() {
				if err := evs.Wait(fromRight); err != nil {
					return err
				}
				haloR = u[n+2+par]
			}
			// Explicit Euler step.
			next[0] = interior[0] + alpha*(haloL-2*interior[0]+interior[1])
			for i := 1; i < n-1; i++ {
				next[i] = interior[i] + alpha*(interior[i-1]-2*interior[i]+interior[i+1])
			}
			next[n-1] = interior[n-1] + alpha*(interior[n-2]-2*interior[n-1]+haloR)
			copy(interior, next)
			im.Compute(int64(n) * 4)
		}

		// Heat conservation check (insulated ends): global sums match.
		sums := []float64{localSum(interior), initialHeat}
		out := make([]float64, 2)
		if err := world.Allreduce(caf.F64Bytes(sums), caf.F64Bytes(out), caf.Float64, caf.OpSum); err != nil {
			return err
		}
		if im.ID() == 0 {
			drift := math.Abs(out[0]-out[1]) / out[1]
			fmt.Printf("heat: %d cells x %d steps on %d images; total heat %.6f -> %.6f (drift %.2e), virtual time %.3f ms\n",
				total, steps, im.N(), out[1], out[0], drift, im.Now()*1e3)
			if drift > 1e-9 {
				return fmt.Errorf("heat not conserved")
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

func localSum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}
