// Histogram: function shipping and finish. Every image scans a local shard
// of values and, instead of moving the data, ships increment functions to
// the images that own the histogram bins (compute-to-data, CAF 2.0 function
// shipping). The enclosing finish block guarantees every shipped function —
// including the re-shipped overflow handling — has executed globally before
// the histogram is read.
//
//	go run ./examples/histogram
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
)

const (
	images       = 8
	binsPerImage = 16
	valuesPer    = 10_000
)

const (
	fnBump uint64 = iota + 1 // args: 4-byte bin index, 4-byte count
	fnTally
)

func main() {
	cfg := caf.Config{Substrate: caf.MPI, Platform: fabric.Platform("fusion")}
	err := caf.Run(images, cfg, func(im *caf.Image) error {
		world := im.World()
		bins := make([]int64, binsPerImage) // my shard of the histogram
		tallied := make([]int64, 1)

		// Shipped functions run on the target image's goroutine; they see
		// the target's closure state. Registration must be symmetric.
		if err := im.RegisterFunc(fnBump, func(target *caf.Image, args []byte) {
			bin := binary.LittleEndian.Uint32(args[0:4])
			cnt := binary.LittleEndian.Uint32(args[4:8])
			bins[bin] += int64(cnt)
		}); err != nil {
			return err
		}
		if err := im.RegisterFunc(fnTally, func(target *caf.Image, args []byte) {
			// A shipped function may itself ship work: forward a summary
			// bump of everything tallied so far to image 0's bin 0 — this
			// exercises transitive termination detection.
			tallied[0]++
			if target.ID() != 0 {
				var buf [8]byte
				binary.LittleEndian.PutUint32(buf[4:], 0)
				if err := target.Spawn(target.World(), 0, fnBump, buf[:]); err != nil {
					panic(err)
				}
			}
		}); err != nil {
			return err
		}

		totalBins := images * binsPerImage
		counts := make(map[int]uint32) // local aggregation before shipping
		rng := im.Proc().Rng()
		for i := 0; i < valuesPer; i++ {
			v := int(rng.Int63()) % totalBins
			counts[v]++
		}

		err := im.Finish(world, func() error {
			for bin, cnt := range counts {
				owner := bin / binsPerImage
				var buf [8]byte
				binary.LittleEndian.PutUint32(buf[0:4], uint32(bin%binsPerImage))
				binary.LittleEndian.PutUint32(buf[4:8], cnt)
				if err := im.Spawn(world, owner, fnBump, buf[:]); err != nil {
					return err
				}
			}
			// One tally ping to every image (each re-ships to image 0).
			for t := 0; t < im.N(); t++ {
				if err := im.Spawn(world, t, fnTally, nil); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}

		// After finish, all shipped work is globally complete: verify.
		local := int64(0)
		for _, b := range bins {
			local += b
		}
		if im.ID() == 0 {
			// Image 0's bin 0 also received one forwarded bump (count 0)
			// from every other image's tally — counts unchanged, but the
			// spawns had to terminate for finish to return.
			local -= 0
		}
		sum := make([]int64, 1)
		if err := world.Allreduce(caf.I64Bytes([]int64{local}), caf.I64Bytes(sum), caf.Int64, caf.OpSum); err != nil {
			return err
		}
		want := int64(images * valuesPer)
		if im.ID() == 0 {
			fmt.Printf("histogram: %d values binned across %d images; total %d (want %d); tallies on image 0: %d; virtual time %.3f us\n",
				want, im.N(), sum[0], want, tallied[0], im.Now()*1e6)
			if sum[0] != want {
				return fmt.Errorf("lost updates: %d != %d", sum[0], want)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
