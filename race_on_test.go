//go:build race

package cafmpi_test

// raceDetectorOn reports whether the test binary was built with -race.
// The determinism tests key their assertion strength on it: the race
// detector changes goroutine scheduling, which changes how many idle
// progress polls each image runs, and final clocks absorb those MatchNS
// charges (see TestVirtualTimeInvariance).
const raceDetectorOn = true
