package cafmpi_test

import (
	"bytes"
	"errors"
	"testing"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
	"cafmpi/internal/faults"
	"cafmpi/internal/hpcc"
)

// sparseAllgatherCase runs a world-team Allgather of blk bytes per image
// under cfg and checks every image sees every contribution in rank order.
func sparseAllgatherCase(t *testing.T, cfg caf.Config, n, blk int) {
	t.Helper()
	err := caf.Run(n, cfg, func(im *caf.Image) error {
		mine := bytes.Repeat([]byte{byte(im.ID() + 1)}, blk)
		all := make([]byte, blk*n)
		if err := im.World().Allgather(mine, all); err != nil {
			return err
		}
		for r := 0; r < n; r++ {
			want := bytes.Repeat([]byte{byte(r + 1)}, blk)
			if !bytes.Equal(all[r*blk:(r+1)*blk], want) {
				return errors.New("allgather block mismatch")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("n=%d blk=%d: %v", n, blk, err)
	}
}

// TestSparseAllgatherMatchesFlat: the recursive-doubling allgather behind
// the scalable-sync switch (the CAF-GASNet path, where the runtime has no
// native collectives) must deliver the same data as the flat fan-in, across
// the dispatch boundaries: power-of-two vs not, AM-sized blocks vs bulk
// blocks that chunk through the scratch coarray.
func TestSparseAllgatherMatchesFlat(t *testing.T) {
	for _, sub := range []caf.Substrate{caf.MPI, caf.GASNet} {
		for _, sparse := range []bool{false, true} {
			cfg := caf.Config{Substrate: sub, Platform: fabric.Platform("fusion"), SparseFlush: sparse}
			for _, tc := range []struct{ n, blk int }{
				{8, 8},    // power of two, AM-sized: the recursive-doubling path
				{8, 1500}, // power of two, multi-chunk payloads per round
				{8, 5000}, // bulk: falls back to the scratch-coarray path
				{6, 8},    // non-power-of-two: falls back to flat
				{1, 8}, {2, 1},
			} {
				sparseAllgatherCase(t, cfg, tc.n, tc.blk)
			}
		}
	}
}

// TestChaosSparseRandomAccess: the sparse-flush fast path under the PR 5
// canonical 1%-drop plan — verified RandomAccess must still complete
// correctly (resilient delivery composes with dirty-peer flushing) with a
// bit-reproducible injected-fault signature.
func TestChaosSparseRandomAccess(t *testing.T) {
	run := func(sub caf.Substrate) string {
		t.Helper()
		cfg := caf.Config{Substrate: sub, Platform: fabric.Platform("fusion"),
			SparseFlush: true, Faults: faults.Canonical(1)}
		w, err := caf.RunWorld(8, cfg, func(im *caf.Image) error {
			res, err := hpcc.RandomAccess(im, hpcc.RAConfig{TableBits: 8, UpdatesPerImage: 512, BatchSize: 128, Verify: true})
			if err != nil {
				return err
			}
			if res.Errors != 0 {
				return errors.New("RandomAccess table verification failed under fault plan")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", sub, err)
		}
		return faults.SignatureHash(faults.Enabled(w).Log())
	}
	for _, sub := range []caf.Substrate{caf.MPI, caf.GASNet} {
		if s1, s2 := run(sub), run(sub); s1 != s2 {
			t.Fatalf("%s: sparse-mode fault signature not deterministic: %s vs %s", sub, s1, s2)
		}
	}
}
