//go:build !race

package cafmpi_test

// raceDetectorOn reports whether the test binary was built with -race; see
// race_on_test.go.
const raceDetectorOn = false
