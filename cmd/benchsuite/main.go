// Command benchsuite regenerates the paper's tables and figures on the
// simulated platforms and prints each as an aligned text table.
//
// Usage:
//
//	benchsuite [-exp fig3,fig4 | -exp all] [-maxp 256] [-quick] [-results-out results.txt]
//
// Every file-producing flag follows the -<plane>-out convention:
// -results-out, -csv-out, -stats-out, -scaling-out, -parallel-out. The
// pre-1.0 spellings -out and -csv remain as deprecated aliases.
//
// Experiment ids mirror the paper artifacts (fig1..fig12, tab1,
// ubench-mira, ubench-edison, ubench-fusion, ablation-rflush); see
// DESIGN.md for the index.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cafmpi/internal/bench"
	"cafmpi/internal/fabric"
	"cafmpi/internal/obs"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		platform = flag.String("platform", "fusion", "default platform preset (fusion|edison|mira); figures with a fixed platform override this")
		maxP     = flag.Int("maxp", 256, "cap for process-count sweeps")
		quick    = flag.Bool("quick", false, "shrink workloads (smoke test)")
		paper    = flag.Bool("paper", false, "also print the paper's original series for comparison")
		out      = flag.String("results-out", "", "also append formatted results to this file")
		outOld   = flag.String("out", "", "deprecated alias for -results-out")
		csvOut   = flag.String("csv-out", "", "also append CSV rows to this file")
		csvOld   = flag.String("csv", "", "deprecated alias for -csv-out")
		shards   = flag.Int("shards", 0, "fabric delivery shards (host tuning, clock-pure; 0 = derive from GOMAXPROCS)")
		statsOut = flag.String("stats-out", "", "append one JSON line of runtime counters per job to this file")
		scaleOut = flag.String("scaling-out", "", "write the scaling experiment's ScalingReport JSON (BENCH_scaling.json) to this file")
		parOut   = flag.String("parallel-out", "", "write the parallel experiment's ParallelReport JSON (wall-clock vs GOMAXPROCS curves) to this file")
		list     = flag.Bool("list", false, "list experiments and exit")
		baseline = flag.String("baseline", "", "BENCH_*.json baseline file with a \"gate\" section")
		gate     = flag.Bool("gate", false, "run regression gate probes against -baseline and exit nonzero on regression")
	)
	flag.Parse()
	alias(out, *outOld, "-out", "-results-out")
	alias(csvOut, *csvOld, "-csv", "-csv-out")

	if *gate {
		if *baseline == "" {
			fmt.Fprintln(os.Stderr, "benchsuite: -gate requires -baseline")
			os.Exit(2)
		}
		b, err := bench.LoadGateBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(2)
		}
		pf := fabric.Platform(*platform)
		if pf == nil {
			fmt.Fprintf(os.Stderr, "benchsuite: unknown platform %q\n", *platform)
			os.Exit(2)
		}
		pf = withShards(pf, *shards)
		results, ok := bench.RunGate(b, pf)
		fmt.Print(bench.FormatGateResults(results))
		if !ok {
			fmt.Fprintln(os.Stderr, "benchsuite: gate FAILED")
			os.Exit(1)
		}
		fmt.Println("benchsuite: gate passed")
		return
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}
	pf := fabric.Platform(*platform)
	if pf == nil {
		fmt.Fprintf(os.Stderr, "benchsuite: unknown platform %q\n", *platform)
		os.Exit(2)
	}
	pf = withShards(pf, *shards)
	opts := bench.Options{Platform: pf, MaxP: *maxP, Quick: *quick, ScalingOut: *scaleOut, ParallelOut: *parOut}

	var ids []string
	if *expFlag == "all" {
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*expFlag, ",")
	}

	var csvSink *os.File
	if *csvOut != "" {
		f, err := os.OpenFile(*csvOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		csvSink = f
	}
	var sink *os.File
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}
	var statsSink *os.File
	if *statsOut != "" {
		f, err := os.OpenFile(*statsOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		statsSink = f
	}

	failed := 0
	for _, id := range ids {
		e, ok := bench.Lookup(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "benchsuite: unknown experiment %q (use -list)\n", id)
			failed++
			continue
		}
		runOpts := opts
		if statsSink != nil {
			expID := e.ID
			enc := json.NewEncoder(statsSink)
			runOpts.Stats = func(label string, snap *obs.Snapshot) {
				line := struct {
					Experiment string        `json:"experiment"`
					Label      string        `json:"label"`
					Stats      *obs.Snapshot `json:"stats"`
				}{expID, label, snap}
				if err := enc.Encode(&line); err != nil {
					fmt.Fprintf(os.Stderr, "benchsuite: stats-out: %v\n", err)
				}
			}
		}
		start := time.Now() //caflint:allow wallclock -- host wall time of the whole experiment, reported alongside virtual results
		tab, err := e.Run(runOpts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		text := bench.Format(tab)
		fmt.Printf("%s# paper: %s\n# (wall %s)\n\n", text, e.Paper, //caflint:allow wallclock -- printing host wall time
			time.Since(start).Round(time.Millisecond))
		if *paper {
			if ref := bench.PaperReference(e.ID); ref != nil {
				fmt.Println(bench.Format(ref))
			}
		}
		if sink != nil {
			fmt.Fprintf(sink, "%s# paper: %s\n\n", text, e.Paper)
		}
		if csvSink != nil {
			fmt.Fprint(csvSink, bench.FormatCSV(tab))
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// alias folds a deprecated flag spelling into its -<plane>-out replacement:
// the new name wins when both are given, and any use of the old one earns a
// stderr nudge.
func alias(dst *string, old, oldName, newName string) {
	if old == "" {
		return
	}
	if *dst == "" {
		*dst = old
	}
	fmt.Fprintf(os.Stderr, "benchsuite: %s is deprecated, use %s\n", oldName, newName)
}

// withShards pins the fabric delivery-shard count on a copy of the platform
// preset (clock-pure host tuning; 0 leaves the GOMAXPROCS derivation).
func withShards(pf *fabric.Params, shards int) *fabric.Params {
	if shards <= 0 {
		return pf
	}
	cp := *pf
	cp.DeliveryShards = shards
	return &cp
}
