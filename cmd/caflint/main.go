// Command caflint is the repository's multichecker: a suite of static
// analyzers enforcing CAF-runtime invariants that ordinary go vet cannot
// know about. Six intraprocedural passes (virtual-clock purity, mutex guard
// annotations, fabric pool buffer lifetimes, observability coverage,
// shadowed variables) are joined by three interprocedural sync-discipline
// verifiers built on exported facts (barrier matching, RMA epoch checking,
// lock-order certification).
//
// It speaks the cmd/go vet-tool protocol, so both forms work:
//
//	go build -o caflint ./cmd/caflint
//	go vet -vettool=$PWD/caflint ./...
//
// or simply:
//
//	go run ./cmd/caflint ./...
//
// which re-executes itself through `go vet -vettool`. Individual analyzers
// can be disabled with -<name>=false; -json switches to machine-readable
// output (one object per finding: file/line/col/pass/message/suppressed,
// with allow-silenced findings included for auditability). Findings are
// suppressed in source with `//caflint:allow <analyzer> [-- reason]` (see
// internal/analysis).
package main

import (
	"cafmpi/internal/analysis"
	"cafmpi/internal/analysis/passes/barriermatch"
	"cafmpi/internal/analysis/passes/clockpure"
	"cafmpi/internal/analysis/passes/epochcheck"
	"cafmpi/internal/analysis/passes/guardedby"
	"cafmpi/internal/analysis/passes/lockorder"
	"cafmpi/internal/analysis/passes/obsedge"
	"cafmpi/internal/analysis/passes/poolescape"
	"cafmpi/internal/analysis/passes/shadow"
	"cafmpi/internal/analysis/passes/wallclock"
	"cafmpi/internal/analysis/unit"
)

// Suite lists every analyzer caflint runs, in reporting order.
var Suite = []*analysis.Analyzer{
	wallclock.Analyzer,
	clockpure.Analyzer,
	guardedby.Analyzer,
	poolescape.Analyzer,
	obsedge.Analyzer,
	shadow.Analyzer,
	barriermatch.Analyzer,
	epochcheck.Analyzer,
	lockorder.Analyzer,
}

func main() {
	unit.Main(Suite...)
}
