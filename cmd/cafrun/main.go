// Command cafrun launches one of the bundled CAF applications on a
// simulated machine, on either runtime substrate.
//
// Usage:
//
//	cafrun -app ra|fft|hpl|cgpop|racedemo -np 16 -substrate mpi|gasnet \
//	       [-platform fusion|edison|mira] [-sparse-flush] [-trace] [-sanitize] [app flags]
//
// Examples:
//
//	cafrun -app ra -np 64 -substrate gasnet -ra-bits 10
//	cafrun -app fft -np 16 -substrate mpi -fft-log 16 -trace
//	cafrun -app cgpop -np 8 -cg-pull
//	cafrun -app racedemo -np 2 -sanitize   # exits 1 with a data-race finding
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	hostpprof "runtime/pprof"
	"runtime/metrics"
	"sort"

	"cafmpi/caf"
	"cafmpi/internal/cgpop"
	"cafmpi/internal/fabric"
	"cafmpi/internal/faults"
	"cafmpi/internal/hpcc"
	"cafmpi/internal/obs"
	"cafmpi/internal/obs/critpath"
	"cafmpi/internal/obs/flightrec"
	"cafmpi/internal/obs/wallprof"
	"cafmpi/internal/rtmpi"
	"cafmpi/internal/sanitizer"
	"cafmpi/internal/trace"
)

func main() {
	var (
		app      = flag.String("app", "ra", "application: ra | fft | hpl | hpl2d | cgpop | racedemo")
		np       = flag.Int("np", 8, "number of images")
		sub      = flag.String("substrate", "mpi", "runtime substrate: mpi | gasnet")
		platform = flag.String("platform", "fusion", "platform preset")
		trc      = flag.Bool("trace", false, "print the per-category time decomposition")
		verify   = flag.Bool("verify", true, "run the application's self-verification")
		rflush   = flag.Bool("rflush", false, "CAF-MPI: use the proposed MPI_WIN_RFLUSH in the notify fence (§5)")
		atomicEv = flag.Bool("atomic-events", false, "CAF-MPI: use the §3.4 FETCH_AND_OP/CAS event design")
		noSRQ    = flag.Bool("nosrq", false, "disable the GASNet SRQ model (CAF-GASNet-NOSRQ)")
		sparse   = flag.Bool("sparse-flush", false, "scalable-sync mode: dirty-peer flush tracking, on-demand per-peer state, hierarchical collectives (equivalent to -platform <name>-sparse)")

		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON timeline (load in Perfetto) to this file")
		stats      = flag.Bool("stats", false, "print the aggregated runtime counter snapshot after the run")
		commMatrix = flag.Bool("comm-matrix", false, "print the N x N communication matrix after the run")
		obsRing    = flag.Int("obs-ring", 0, "per-image event ring capacity (default obs.DefaultRingCap)")
		critPath   = flag.Bool("critpath", false, "reconstruct the virtual-time critical path and print the blame table (flows overlay -trace-out)")
		histFlag   = flag.Bool("hist", false, "print per-op-class latency histograms (p50/p90/p99/max)")
		sanitize   = flag.Bool("sanitize", false, "run the PGAS synchronization sanitizer; exit 1 if it finds unordered conflicting accesses or RMA misuse")
		faultsSpec = flag.String("faults", "", "deterministic fault plan: a JSON plan file, \"canonical\" (the 1%-drop chaos plan), or \"canonical:SEED\"")
		faultLog   = flag.Bool("fault-log", false, "print the injected-fault decision log after the run (implies reproducible ordering)")
		postmortem = flag.String("postmortem-out", "", "arm the crash-triggered flight recorder: write a deterministic signature-stamped bundle under this directory when an image crashes or the job fails")
		postOld    = flag.String("postmortem", "", "deprecated alias for -postmortem-out")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060) and dump runtime/metrics after the run")
		wallprofOn = flag.Bool("wallprof", false, "host wall-clock profiling plane: per-component host-time blame with a wall-vs-virtual divergence report (clock-pure: virtual results are bit-identical with or without it)")
		wallOut    = flag.String("wallprof-out", "", "write cpu.pprof, mutex.pprof, block.pprof and wallprof.json into this directory (implies -wallprof)")
		wallCont   = flag.Bool("wallprof-contention", false, "enable mutex/block profiling rates for the run (host-side contention capture; implies -wallprof)")

		raBits    = flag.Int("ra-bits", 10, "ra: log2 of per-image table entries")
		raUpdates = flag.Int("ra-updates", 4096, "ra: updates per image")
		fftLog    = flag.Int("fft-log", 14, "fft: log2 of transform size")
		hplN      = flag.Int("hpl-n", 512, "hpl: matrix order")
		hplNB     = flag.Int("hpl-nb", 16, "hpl: block size")
		cgNX      = flag.Int("cg-nx", 256, "cgpop: grid width")
		cgNY      = flag.Int("cg-ny", 512, "cgpop: grid height")
		cgIters   = flag.Int("cg-iters", 60, "cgpop: solver iterations")
		cgPull    = flag.Bool("cg-pull", false, "cgpop: use PULL halo exchange")
		shards    = flag.Int("shards", 0, "fabric delivery shards (host tuning, clock-pure; 0 = derive from GOMAXPROCS)")
	)
	flag.Parse()
	if *postOld != "" {
		if *postmortem == "" {
			*postmortem = *postOld
		}
		fmt.Fprintln(os.Stderr, "cafrun: -postmortem is deprecated, use -postmortem-out")
	}

	pf := fabric.Platform(*platform)
	if pf == nil {
		fail("unknown platform %q", *platform)
	}
	if *shards > 0 {
		cp := *pf
		cp.DeliveryShards = *shards
		pf = &cp
	}
	if *noSRQ {
		cp := *pf
		cp.GASNet.SRQ.Enabled = false
		pf = &cp
	}
	if *sparse && !pf.SparseSync() {
		pf = fabric.SparseVariant(pf)
	}
	if *pprofAddr != "" {
		// The profiling endpoint observes the real (host) process — goroutine
		// stacks, heap, CPU — while the simulated job runs.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "cafrun: pprof server: %v\n", err)
			}
		}()
		fmt.Printf("pprof: serving http://%s/debug/pprof/\n", *pprofAddr)
	}
	wallprofEnabled := *wallprofOn || *wallOut != "" || *wallCont
	// The divergence report needs the virtual-time blame table, so wallprof
	// implies the observability plane.
	observe := *traceOut != "" || *stats || *commMatrix || *critPath || *histFlag || wallprofEnabled
	if *wallCont {
		restore := wallprof.EnableContention()
		defer restore()
	}
	var cpuProf *os.File
	if *wallOut != "" {
		if err := os.MkdirAll(*wallOut, 0o755); err != nil {
			fail("%v", err)
		}
		f, err := os.Create(filepath.Join(*wallOut, "cpu.pprof"))
		if err != nil {
			fail("%v", err)
		}
		if err := hostpprof.StartCPUProfile(f); err != nil {
			fail("starting CPU profile: %v", err)
		}
		cpuProf = f
	}
	var plan *faults.Plan
	if *faultsSpec != "" {
		var err error
		if plan, err = faults.LoadSpec(*faultsSpec); err != nil {
			fail("%v", err)
		}
		if err := plan.Validate(*np); err != nil {
			fail("fault plan: %v", err)
		}
	}
	cfg := caf.Config{Substrate: caf.Substrate(*sub), Platform: pf,
		Diag:       caf.Diag{Trace: *trc, Observe: observe, ObsRingCap: *obsRing, Sanitize: *sanitize, Postmortem: *postmortem, WallProf: wallprofEnabled},
		Faults:     plan,
		MPIOptions: rtmpi.Options{UseRflush: *rflush, AtomicEvents: *atomicEv}}

	clocks := make([]int64, *np)
	w, err := caf.RunWorld(*np, cfg, func(im *caf.Image) error {
		defer func() { clocks[im.ID()] = im.Proc().Now() }()
		var summary string
		switch *app {
		case "ra":
			res, err := hpcc.RandomAccess(im, hpcc.RAConfig{
				TableBits: *raBits, UpdatesPerImage: *raUpdates, Verify: *verify})
			if err != nil {
				return err
			}
			summary = fmt.Sprintf("RandomAccess: %.6f GUPS (%d updates in %.6f virtual s; errors=%d)",
				res.GUPS, res.Updates, res.Seconds, res.Errors)
		case "fft":
			res, err := hpcc.FFT(im, hpcc.FFTConfig{LogSize: *fftLog, Verify: *verify})
			if err != nil {
				return err
			}
			summary = fmt.Sprintf("FFT: %.4f GFlop/s (2^%d points in %.6f virtual s; max round-trip error %.2e)",
				res.GFlops, *fftLog, res.Seconds, res.MaxError)
		case "hpl":
			res, err := hpcc.HPL(im, hpcc.HPLConfig{N: *hplN, NB: *hplNB, Verify: *verify})
			if err != nil {
				return err
			}
			summary = fmt.Sprintf("HPL: %.6f TFlop/s (N=%d in %.6f virtual s; scaled residual %.3f)",
				res.TFlops, res.N, res.Seconds, res.Residual)
		case "hpl2d":
			res, err := hpcc.HPL2D(im, hpcc.HPLConfig{N: *hplN, NB: *hplNB, Verify: *verify})
			if err != nil {
				return err
			}
			summary = fmt.Sprintf("HPL2D: %.6f TFlop/s (N=%d in %.6f virtual s; scaled residual %.3f)",
				res.TFlops, res.N, res.Seconds, res.Residual)
		case "cgpop":
			res, err := cgpop.Run(im, cgpop.Config{NX: *cgNX, NY: *cgNY, Iters: *cgIters, Pull: *cgPull})
			if err != nil {
				return err
			}
			mode := "PUSH"
			if *cgPull {
				mode = "PULL"
			}
			summary = fmt.Sprintf("CGPOP(%s): %.6f virtual s for %d iterations; residual %.3e -> %.3e (dual runtime: %v, runtime memory %.1f MB)",
				mode, res.Seconds, res.Iterations, res.InitialNorm, res.FinalNorm,
				res.DualRuntime, float64(res.RuntimeMemory)/(1<<20))
		case "racedemo":
			// Deliberately buggy two-image program (demo for -sanitize): an
			// unsynchronized Put racing the owner's local read.
			co, err := im.AllocCoarray(im.World(), 64)
			if err != nil {
				return err
			}
			if im.ID() == 0 {
				if err := co.Put(1%im.N(), 0, make([]byte, 8)); err != nil {
					return err
				}
			} else if im.ID() == 1 {
				_ = co.ReadLocal(0, 8)
			}
			if err := co.Free(); err != nil {
				return err
			}
			summary = "racedemo: completed (run with -sanitize to see the bug)"
		default:
			return fmt.Errorf("unknown app %q", *app)
		}
		if im.ID() == 0 {
			fmt.Printf("%s x %d images on %s (%s substrate)\n%s\n", *app, im.N(), pf.Name, *sub, summary)
		}
		if *trc {
			// Aggregate the decomposition across images.
			cats := trace.Categories()
			in := make([]float64, len(cats))
			for i, c := range cats {
				in[i] = float64(im.Tracer().Total(c)) * 1e-9
			}
			out := make([]float64, len(cats))
			if err := im.World().Allreduce(caf.F64Bytes(in), caf.F64Bytes(out), caf.Float64, caf.OpSum); err != nil {
				return err
			}
			if im.ID() == 0 {
				fmt.Println("aggregate time decomposition (virtual seconds):")
				for i, c := range cats {
					if out[i] > 0 {
						fmt.Printf("  %-16s %12.6f\n", c, out[i])
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		// The flight recorder already dumped (core's latch hook fires before
		// RunWorld returns); Dump here just re-resolves the bundle path.
		if rec := flightrec.Armed(w); rec != nil {
			if dir, derr := rec.Dump(w, err); derr == nil && dir != "" {
				fmt.Fprintf(os.Stderr, "cafrun: postmortem bundle: %s\n", dir)
			}
		}
		// A crashed run is when the decision log matters most: print it (and
		// the hash that names the bundle) before exiting.
		if st := faults.Enabled(w); *faultLog && st.Active() {
			evs := st.Log()
			for _, ev := range evs {
				fmt.Println(ev.String())
			}
			fmt.Printf("signature_hash: %s\n", faults.SignatureHash(evs))
		}
		fail("%v", err)
	}

	if ow := obs.Enabled(w); ow != nil {
		// Post-run gauges must land before the snapshot is taken: the
		// sanitizer's self-metered shadow-state footprint and the wallprof
		// host metrics are volatile gauges merged by max into shard 0.
		wpw := wallprof.Enabled(w)
		if wpw != nil {
			wpw.Finish()
			wpw.DepositGauges(ow)
		}
		if sw := sanitizer.Enabled(w); sw != nil {
			ow.Shard(0).Max(obs.CtrSanBytesPerImage, sw.MemMaxBytes())
		}
		snap := ow.Snapshot()
		var rep *critpath.Report
		if *critPath || wpw != nil {
			rep = critpath.Analyze(ow, clocks)
			if *critPath {
				fmt.Print(rep.BlameTable())
			}
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fail("%v", err)
			}
			if err := ow.WriteChromeTraceFlows(f, rep.Flows()); err != nil {
				f.Close()
				fail("writing %s: %v", *traceOut, err)
			}
			if err := f.Close(); err != nil {
				fail("writing %s: %v", *traceOut, err)
			}
			retained := snap.EventsRecorded - snap.EventsDropped
			fmt.Printf("wrote %d events to %s (%d recorded, %d dropped; load in Perfetto / chrome://tracing)\n",
				retained, *traceOut, snap.EventsRecorded, snap.EventsDropped)
			if n := len(rep.Flows()); n > 0 {
				fmt.Printf("overlaid %d critical-path flow arrows\n", n/2)
			}
		}
		if *histFlag {
			fmt.Print(snap.LatencyText())
		}
		if *stats {
			fmt.Print(snap.Text())
		}
		if *commMatrix {
			fmt.Print(snap.CommMatrixText())
		}
		if wpw != nil {
			var virt map[string]int64
			var finish int64
			if rep != nil {
				virt, finish = rep.ComponentTotals(), rep.FinishNS
			}
			wrep := wpw.Analyze(virt, finish)
			fmt.Print(wrep.Text())
			if *wallOut != "" {
				if cpuProf != nil {
					hostpprof.StopCPUProfile()
					cpuProf.Close()
					cpuProf = nil
				}
				writeProfile := func(name, file string) {
					p := hostpprof.Lookup(name)
					if p == nil {
						return
					}
					f, err := os.Create(filepath.Join(*wallOut, file))
					if err != nil {
						fail("%v", err)
					}
					if err := p.WriteTo(f, 0); err != nil {
						f.Close()
						fail("writing %s: %v", file, err)
					}
					f.Close()
				}
				writeProfile("mutex", "mutex.pprof")
				writeProfile("block", "block.pprof")
				js, err := json.MarshalIndent(wrep, "", "  ")
				if err != nil {
					fail("%v", err)
				}
				if err := os.WriteFile(filepath.Join(*wallOut, "wallprof.json"), append(js, '\n'), 0o644); err != nil {
					fail("%v", err)
				}
				fmt.Printf("wallprof: wrote cpu.pprof, mutex.pprof, block.pprof, wallprof.json to %s\n", *wallOut)
			}
		}
	}
	if cpuProf != nil {
		// -wallprof-out with a run that never reached the report (should not
		// happen on success, but keep the profile coherent).
		hostpprof.StopCPUProfile()
		cpuProf.Close()
	}
	if st := faults.Enabled(w); st.Active() {
		evs := st.Log()
		if *faultLog {
			for _, ev := range evs {
				fmt.Println(ev.String())
			}
			// Same line the postmortem bundle's MANIFEST carries, so a live
			// run and a dumped bundle can be matched by eye.
			fmt.Printf("signature_hash: %s\n", faults.SignatureHash(evs))
		}
		fmt.Printf("faults: %d injected (signature %s)\n", len(evs), faults.SignatureHash(evs))
	}
	if *pprofAddr != "" {
		dumpRuntimeMetrics()
	}
	if sw := sanitizer.Enabled(w); sw != nil {
		fmt.Print(sw.Text())
		if sw.Count() > 0 {
			os.Exit(1)
		}
	}
}

// dumpRuntimeMetrics prints the Go runtime/metrics registry (host-process
// metrics, sorted by name for stable diffs).
func dumpRuntimeMetrics() {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	sort.Slice(samples, func(a, b int) bool { return samples[a].Name < samples[b].Name })
	fmt.Println("runtime/metrics (host process):")
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			fmt.Printf("  %-60s %d\n", s.Name, s.Value.Uint64())
		case metrics.KindFloat64:
			fmt.Printf("  %-60s %g\n", s.Name, s.Value.Float64())
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			var total uint64
			for _, c := range h.Counts {
				total += c
			}
			fmt.Printf("  %-60s histogram, %d samples\n", s.Name, total)
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cafrun: "+format+"\n", args...)
	os.Exit(1)
}
