package cafmpi_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cafmpi/caf"
	"cafmpi/internal/fabric"
	"cafmpi/internal/faults"
)

// crashPingPong bounces an event between images 0 and 1 in strict
// alternation — a lockstep workload whose virtual-time telemetry is a pure
// function of the fault plan, which is what makes the dumped bundle
// byte-comparable across runs. Image 1 hits the plan's crash point mid-run;
// image 0's wait must unblock with the typed failure instead of hanging.
func crashPingPong(im *caf.Image) error {
	evs, err := im.NewEvents(im.World(), 2)
	if err != nil {
		return err
	}
	if im.ID() > 1 {
		return nil
	}
	for i := 0; i < 400; i++ {
		if im.ID() == 0 {
			if err := evs.Notify(1, 0); err != nil {
				return err
			}
			if err := evs.Wait(1); err != nil {
				return err
			}
		} else {
			if err := evs.Wait(0); err != nil {
				return err
			}
			if err := evs.Notify(0, 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// postmortemRun executes the crash workload with the flight recorder armed
// and returns the bundle directory.
func postmortemRun(t *testing.T, dir string) string {
	t.Helper()
	cfg := caf.Config{Substrate: caf.MPI, Platform: fabric.Platform("fusion"),
		Diag:   caf.Diag{Postmortem: dir},
		Faults: faults.CanonicalCrash(7)}
	_, err := caf.RunWorld(4, cfg, crashPingPong)
	if err == nil {
		t.Fatal("crash plan completed without error")
	}
	if !errors.Is(err, caf.ErrImageFailed) {
		t.Fatalf("run error %v is not ErrImageFailed", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var bundle string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "postmortem-") {
			bundle = filepath.Join(dir, e.Name())
		}
	}
	if bundle == "" {
		t.Fatalf("no postmortem bundle under %s", dir)
	}
	return bundle
}

// TestPostmortemBundleOnCrash: an injected crash auto-dumps a bundle whose
// manifest names the failed image and carries the fault signature hash.
func TestPostmortemBundleOnCrash(t *testing.T) {
	bundle := postmortemRun(t, t.TempDir())
	man, err := os.ReadFile(filepath.Join(bundle, "MANIFEST.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"status: failed", "failed_image: 1", "signature_hash: "} {
		if !strings.Contains(string(man), want) {
			t.Errorf("MANIFEST missing %q:\n%s", want, man)
		}
	}
	for _, name := range []string{"signature.txt", "counters.txt", "events.txt", "volatile.txt"} {
		if _, err := os.Stat(filepath.Join(bundle, name)); err != nil {
			t.Errorf("bundle missing %s: %v", name, err)
		}
	}
}

// TestPostmortemBundleDeterministic: two runs of the same chaos plan dump
// byte-identical bundles (volatile.txt excepted — that file is the
// designated quarantine for schedule-dependent state).
func TestPostmortemBundleDeterministic(t *testing.T) {
	a := postmortemRun(t, t.TempDir())
	b := postmortemRun(t, t.TempDir())
	if filepath.Base(a) != filepath.Base(b) {
		t.Fatalf("bundle names differ: %s vs %s (signature hash not stable)", a, b)
	}
	for _, name := range []string{"MANIFEST.txt", "signature.txt", "counters.txt", "events.txt"} {
		ba, err := os.ReadFile(filepath.Join(a, name))
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(filepath.Join(b, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(ba) != string(bb) {
			t.Errorf("%s differs across two runs of the same chaos plan", name)
		}
	}
}
