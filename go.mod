module cafmpi

go 1.22
